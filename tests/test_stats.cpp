#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace depstor {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of that classic set: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(3);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v = {5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, LinearInterpolation) {
  // Sorted: {10, 20}; p=0.25 → 12.5.
  EXPECT_DOUBLE_EQ(percentile({20.0, 10.0}, 0.25), 12.5);
}

TEST(Percentile, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW(percentile({}, 0.5), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 1.5), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, -0.1), InvalidArgument);
}

TEST(Percentile, BatchMatchesSingle) {
  const std::vector<double> v = {4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
  const auto batch = percentiles(v, {0.0, 0.5, 0.9, 1.0});
  EXPECT_DOUBLE_EQ(batch[0], percentile(v, 0.0));
  EXPECT_DOUBLE_EQ(batch[1], percentile(v, 0.5));
  EXPECT_DOUBLE_EQ(batch[2], percentile(v, 0.9));
  EXPECT_DOUBLE_EQ(batch[3], percentile(v, 1.0));
}

class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, NonDecreasingInQ) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.uniform(0.0, 1000.0));
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double p = percentile(v, std::min(q, 1.0));
    EXPECT_GE(p, prev);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace depstor
