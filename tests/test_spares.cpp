// Hot-spare array enclosures: a configuration-solver purchase that shortens
// the array repair lead for primaries of the same model at the site.
#include <gtest/gtest.h>

#include "model/recovery_plan.hpp"
#include "solver/config_solver.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::full_choice;
using testing::peer_env;
using testing::sync_r_backup;

TEST(Spares, EnableDisableRoundTrip) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  EXPECT_FALSE(cand.has_spare_array(0, "XP1200"));
  cand.set_spare_array(0, "XP1200", true);
  EXPECT_TRUE(cand.has_spare_array(0, "XP1200"));
  cand.set_spare_array(0, "XP1200", true);  // idempotent
  EXPECT_TRUE(cand.has_spare_array(0, "XP1200"));
  cand.set_spare_array(0, "XP1200", false);
  EXPECT_FALSE(cand.has_spare_array(0, "XP1200"));
  cand.set_spare_array(0, "XP1200", false);  // idempotent
  EXPECT_NO_THROW(cand.check_feasible());
}

TEST(Spares, DisablingOneTypeKeepsOtherTypesSpareAtTheSite) {
  // Regression: spares at a site used to share one pool owner id, so
  // returning (or probe-rolling-back) a spare of one type silently dropped
  // the site's spares of every other type — and the config solver's
  // increment loop then reported costs for a state it had just destroyed.
  Environment env = peer_env(1);
  env.topology.sites[0].max_spare_arrays = 2;  // room for both types
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  cand.set_spare_array(0, "XP1200", true);
  cand.set_spare_array(0, "EVA8000", true);
  const double both = cand.evaluate().total();

  cand.set_spare_array(0, "EVA8000", false);
  EXPECT_TRUE(cand.has_spare_array(0, "XP1200"));
  EXPECT_FALSE(cand.has_spare_array(0, "EVA8000"));

  // Probe-style round trip must restore the exact evaluated state.
  cand.set_spare_array(0, "EVA8000", true);
  EXPECT_DOUBLE_EQ(cand.evaluate().total(), both);
}

TEST(Spares, SpareCostsItsFixedPrice) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  const double before = cand.evaluate().outlay;
  cand.set_spare_array(0, "XP1200", true);
  const double after = cand.evaluate().outlay;
  // Annualized fixed price of a bare XP1200 enclosure: $375K / 3.
  EXPECT_NEAR(after - before, 375000.0 / 3.0, 1.0);
}

TEST(Spares, ShortensArrayRepairLead) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  const auto without = plan_recovery(env.app(0), cand.assignment(0),
                                     cand.pool(), FailureScope::DiskArray,
                                     env.params);
  EXPECT_DOUBLE_EQ(without.lead_hours, env.params.repair_disk_array_hours);

  cand.set_spare_array(0, "XP1200", true);
  const auto with = plan_recovery(env.app(0), cand.assignment(0), cand.pool(),
                                  FailureScope::DiskArray, env.params);
  EXPECT_DOUBLE_EQ(with.lead_hours, env.params.repair_with_spare_hours);
}

TEST(Spares, WrongModelDoesNotHelp) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));  // primary on XP1200
  cand.set_spare_array(0, "MSA1500", true);
  const auto plan = plan_recovery(env.app(0), cand.assignment(0), cand.pool(),
                                  FailureScope::DiskArray, env.params);
  EXPECT_DOUBLE_EQ(plan.lead_hours, env.params.repair_disk_array_hours);
}

TEST(Spares, DoesNotHelpSiteDisasters) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  cand.set_spare_array(0, "XP1200", true);
  const auto plan = plan_recovery(env.app(0), cand.assignment(0), cand.pool(),
                                  FailureScope::SiteDisaster, env.params);
  EXPECT_DOUBLE_EQ(plan.lead_hours, env.params.repair_site_hours);
}

TEST(Spares, SiteSpareLimitEnforced) {
  Environment env = peer_env(1);  // max_spare_arrays = 1
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  cand.set_spare_array(0, "XP1200", true);
  EXPECT_THROW(cand.set_spare_array(0, "EVA8000", true), InfeasibleError);
  // The failed enable must not leave residue.
  EXPECT_FALSE(cand.has_spare_array(0, "EVA8000"));
  EXPECT_NO_THROW(cand.check_feasible());
}

TEST(Spares, SpareDeviceNotHijackedByPlacement) {
  // An idle device reserved as a spare must not become someone's primary.
  Environment env = peer_env(2);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  cand.set_spare_array(0, "EVA8000", true);
  DesignChoice choice = full_choice(sync_r_backup());
  choice.primary_array_type = "EVA8000";
  cand.place_app(1, choice);
  // App 1's EVA8000 primary is a different device than the spare.
  EXPECT_TRUE(cand.has_spare_array(0, "EVA8000"));
  const auto& primary = cand.pool().device(cand.assignment(1).primary_array);
  EXPECT_FALSE(cand.pool().is_spare_device(primary.id));
  EXPECT_NO_THROW(cand.check_feasible());
}

TEST(Spares, SurviveAppReconfiguration) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  cand.set_spare_array(0, "XP1200", true);
  cand.remove_app(0);
  EXPECT_TRUE(cand.has_spare_array(0, "XP1200"));
}

TEST(Spares, ConfigSolverBuysSpareWhenItPaysOff) {
  // A reconstruct-protected web service ($5M/hr outage) on its own array:
  // cutting the repair lead from 6 h to 0.5 h saves
  // (6 − 0.5) × $5M × (1/3)/yr ≈ $9.2M/yr against a $125K/yr spare.
  Environment env = testing::tiny_env(workload::web_service());
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  ConfigSolver solver(&env);
  solver.solve(cand);
  EXPECT_TRUE(cand.has_spare_array(0, "XP1200"));
}

TEST(Spares, ConfigSolverSkipsSpareWhenWorthless) {
  // Failover apps never wait for the array repair: a spare buys nothing.
  Environment env = testing::tiny_env(workload::web_service());
  Candidate cand(&env);
  cand.place_app(0, full_choice(testing::sync_f_backup()));
  ConfigSolver solver(&env);
  solver.solve(cand);
  EXPECT_FALSE(cand.has_spare_array(0, "XP1200"));
}

TEST(Spares, PolicyCanDisable) {
  Environment env = testing::tiny_env(workload::web_service());
  env.policies.allow_spare_arrays = false;
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  ConfigSolver solver(&env);
  solver.solve(cand);
  EXPECT_FALSE(cand.has_spare_array(0, "XP1200"));
}

TEST(Spares, PurposeToString) {
  EXPECT_STREQ(to_string(Purpose::Spare), "spare");
}

}  // namespace
}  // namespace depstor
