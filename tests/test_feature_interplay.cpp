// Cross-feature interactions: spares × reports, regional × Monte Carlo,
// parallel × multi-site, candidate copies with reservations.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "sim/monte_carlo.hpp"
#include "solver/parallel.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::full_choice;
using testing::peer_env;
using testing::sync_f_backup;
using testing::sync_r_backup;

TEST(Interplay, SpareDevicesAppearInJsonReport) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  cand.set_spare_array(0, "XP1200", true);
  const std::string json = solution_to_json(env, cand, cand.evaluate());
  // The spare is an in-use device with zero units and the fixed price.
  EXPECT_NE(json.find("\"capacity_units\":0"), std::string::npos);
  EXPECT_NE(json.find("375000"), std::string::npos);
}

TEST(Interplay, CandidateCopyKeepsSparesIndependent) {
  Environment env = peer_env(1);
  Candidate a(&env);
  a.place_app(0, full_choice(sync_r_backup()));
  a.set_spare_array(0, "XP1200", true);
  Candidate b = a;
  b.set_spare_array(0, "XP1200", false);
  EXPECT_TRUE(a.has_spare_array(0, "XP1200"));
  EXPECT_FALSE(b.has_spare_array(0, "XP1200"));
}

TEST(Interplay, RecoveryReportIncludesRegionalScenarios) {
  Environment env = peer_env(1);
  env.topology.sites[1].region = 1;
  env.failures.regional_disaster_rate = 0.1;
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup()));
  const std::string report = recovery_report(env, cand);
  EXPECT_NE(report.find("region(0)"), std::string::npos);
  // Cross-region mirror → the regional event fails over.
  EXPECT_NE(report.find("failover"), std::string::npos);
}

TEST(Interplay, MonteCarloCoversRegionalEvents) {
  Environment env = peer_env(2);
  env.topology.sites[1].region = 1;
  env.failures.regional_disaster_rate = 0.5;
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup()));
  cand.place_app(1, full_choice(sync_f_backup()));
  MonteCarloSimulator sim(&env);
  const auto with_regional = sim.run(cand, {.years = 800.0, .seed = 3});

  Environment env2 = peer_env(2);
  env2.topology.sites[1].region = 1;
  Candidate cand2(&env2);
  cand2.place_app(0, full_choice(sync_f_backup()));
  cand2.place_app(1, full_choice(sync_f_backup()));
  MonteCarloSimulator sim2(&env2);
  const auto without = sim2.run(cand2, {.years = 800.0, .seed = 3});

  // Regional Poisson stream adds events (≈ 0.5/yr × 800 yr more).
  EXPECT_GT(with_regional.events, without.events + 200);
}

TEST(Interplay, SpareReducesEvaluatedOutagePenalty) {
  Environment env = testing::tiny_env(workload::web_service());
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  const double before = cand.evaluate().outage_penalty;
  cand.set_spare_array(0, "XP1200", true);
  const double after = cand.evaluate().outage_penalty;
  EXPECT_LT(after, before);
}

TEST(Interplay, ParallelSolveOnMultiSite) {
  Environment env = scenarios::multi_site(8, 4, 6);
  DesignSolverOptions o;
  o.time_budget_ms = 600.0;
  o.seed = 55;
  const auto result = testing::solve_fanned(env, o, 2);
  ASSERT_TRUE(result.feasible);
  EXPECT_NO_THROW(result.best->check_feasible());
  EXPECT_EQ(result.best->assigned_count(), 8);
}

TEST(Interplay, SampleParallelWithMoreWorkersThanNeeded) {
  Environment env = peer_env(2);
  const auto stats = sample_parallel(&env, 5, 1, 8);
  EXPECT_GE(stats.feasible, 5);
}

TEST(Interplay, IncrementalBackupSurvivesSetBackupConfigRoundTrip) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  DesignChoice choice = full_choice(testing::backup_only());
  choice.backup.cycle = BackupCycleMode::FullPlusIncrementals;
  choice.backup.incremental_interval_hours = 24.0;
  cand.place_app(0, choice);
  EXPECT_EQ(cand.assignment(0).backup.cycle,
            BackupCycleMode::FullPlusIncrementals);
  BackupChainConfig cfg = cand.assignment(0).backup;
  cfg.snapshot_interval_hours = 8.0;
  cand.set_backup_config(0, cfg);
  EXPECT_EQ(cand.assignment(0).backup.cycle,
            BackupCycleMode::FullPlusIncrementals);
  const std::string json = solution_to_json(env, cand, cand.evaluate());
  EXPECT_NE(json.find("full+incrementals"), std::string::npos);
}

TEST(Interplay, ThreatReportAfterFullConfigSolve) {
  Environment env = peer_env(4);
  Candidate cand(&env);
  for (int i = 0; i < 4; ++i) cand.place_app(i, full_choice(sync_f_backup()));
  ConfigSolver solver(&env);
  solver.solve(cand);
  const std::string report = threat_report(env, cand);
  EXPECT_NE(report.find("data-object"), std::string::npos);
  EXPECT_NO_THROW(cand.check_feasible());
}

}  // namespace
}  // namespace depstor
