#include <gtest/gtest.h>

#include "model/recovery_plan.hpp"
#include "model/recovery_sim.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace depstor {
namespace {

using testing::async_r_backup;
using testing::backup_only;
using testing::candidate_with;
using testing::sync_f_backup;
using testing::sync_f_only;
using testing::sync_r_backup;
using testing::tiny_env;

RecoveryPlan plan_for(const TechniqueSpec& technique, FailureScope scope,
                      ModelParams params = {}) {
  Environment env = tiny_env(workload::central_banking());
  env.params = params;
  Candidate cand = candidate_with(env, technique);
  return plan_recovery(env.app(0), cand.assignment(0), cand.pool(), scope,
                       params);
}

// --- action selection matrix ---

TEST(PlanAction, FailoverWhenMirrorSurvivesAndTechniqueAllows) {
  EXPECT_EQ(plan_for(sync_f_backup(), FailureScope::DiskArray).action,
            RecoveryAction::Failover);
  EXPECT_EQ(plan_for(sync_f_backup(), FailureScope::SiteDisaster).action,
            RecoveryAction::Failover);
  EXPECT_EQ(plan_for(sync_f_only(), FailureScope::DiskArray).action,
            RecoveryAction::Failover);
}

TEST(PlanAction, SnapshotRevertForObjectFailureWithBackup) {
  EXPECT_EQ(plan_for(sync_f_backup(), FailureScope::DataObject).action,
            RecoveryAction::SnapshotRevert);
  EXPECT_EQ(plan_for(backup_only(), FailureScope::DataObject).action,
            RecoveryAction::SnapshotRevert);
}

TEST(PlanAction, ReconstructForReconstructTechniques) {
  EXPECT_EQ(plan_for(sync_r_backup(), FailureScope::DiskArray).action,
            RecoveryAction::Reconstruct);
  EXPECT_EQ(plan_for(async_r_backup(), FailureScope::SiteDisaster).action,
            RecoveryAction::Reconstruct);
  EXPECT_EQ(plan_for(backup_only(), FailureScope::DiskArray).action,
            RecoveryAction::Reconstruct);
}

TEST(PlanAction, UnrecoverableForMirrorOnlyObjectFailure) {
  const auto plan = plan_for(sync_f_only(), FailureScope::DataObject);
  EXPECT_EQ(plan.action, RecoveryAction::Unrecoverable);
  EXPECT_EQ(plan.copy, CopyLevel::None);
  ModelParams p;
  EXPECT_DOUBLE_EQ(plan.loss_hours, p.unprotected_loss_hours);
}

// --- copy choice ---

TEST(PlanCopy, ReconstructUsesFreshestSurvivor) {
  EXPECT_EQ(plan_for(sync_r_backup(), FailureScope::DiskArray).copy,
            CopyLevel::Mirror);
  EXPECT_EQ(plan_for(backup_only(), FailureScope::DiskArray).copy,
            CopyLevel::TapeBackup);
  EXPECT_EQ(plan_for(backup_only(), FailureScope::SiteDisaster).copy,
            CopyLevel::Vault);
}

// --- timing composition ---

TEST(PlanTiming, FailoverHasNoTransferAndShortFixedTime) {
  ModelParams p;
  const auto plan = plan_for(sync_f_backup(), FailureScope::SiteDisaster, p);
  EXPECT_FALSE(plan.needs_transfer());
  EXPECT_DOUBLE_EQ(plan.fixed_restore_hours, p.failover_hours);
  // Failover serializes its bring-up on the spare compute device.
  EXPECT_EQ(plan.shared_devices.size(), 1u);
}

TEST(PlanTiming, ConcurrentFailoversSerializeOnSpareCompute) {
  Environment env = testing::peer_env(4);
  Candidate cand(&env);
  for (int i = 0; i < 4; ++i) {
    cand.place_app(i, testing::full_choice(sync_f_backup()));
  }
  ScenarioSpec s;
  s.scope = FailureScope::SiteDisaster;
  s.failed_site = 0;
  const auto results = simulate_recovery(s, env.apps, cand.assignments(),
                                         cand.pool(), env.params);
  ASSERT_EQ(results.size(), 4u);
  // All four fail over to the same secondary compute: the k-th in priority
  // order completes after k bring-up slots.
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_NEAR(results[i].outage_hours,
                env.params.failover_hours * static_cast<double>(i + 1),
                1e-9);
  }
}

TEST(PlanTiming, SnapshotRevertUsesOverheadOnly) {
  ModelParams p;
  const auto plan = plan_for(backup_only(), FailureScope::DataObject, p);
  EXPECT_FALSE(plan.needs_transfer());
  EXPECT_DOUBLE_EQ(plan.fixed_restore_hours, p.snapshot_restore_hours);
  EXPECT_DOUBLE_EQ(plan.loss_hours,
                   BackupChainConfig{}.snapshot_interval_hours);
}

TEST(PlanTiming, ReconstructCarriesRepairLead) {
  ModelParams p;
  EXPECT_DOUBLE_EQ(
      plan_for(sync_r_backup(), FailureScope::DiskArray, p).lead_hours,
      p.repair_disk_array_hours);
  EXPECT_DOUBLE_EQ(
      plan_for(sync_r_backup(), FailureScope::SiteDisaster, p).lead_hours,
      p.repair_site_hours);
}

TEST(PlanTiming, VaultRestoreAddsRetrievalLead) {
  ModelParams p;
  const auto plan = plan_for(backup_only(), FailureScope::SiteDisaster, p);
  EXPECT_EQ(plan.copy, CopyLevel::Vault);
  EXPECT_DOUBLE_EQ(plan.lead_hours,
                   p.repair_site_hours + p.vault_retrieval_hours);
  EXPECT_DOUBLE_EQ(plan.fixed_restore_hours, p.tape_load_hours);
}

TEST(PlanTiming, DetectionLatencyAddsEverywhere) {
  ModelParams p;
  p.detection_hours = 2.0;
  const auto failover = plan_for(sync_f_backup(), FailureScope::DiskArray, p);
  EXPECT_DOUBLE_EQ(failover.lead_hours, 2.0);
  const auto reconstruct =
      plan_for(sync_r_backup(), FailureScope::DiskArray, p);
  EXPECT_DOUBLE_EQ(reconstruct.lead_hours, 2.0 + p.repair_disk_array_hours);
}

TEST(PlanTransfer, ReconstructMovesTheWholeDataset) {
  const auto plan = plan_for(sync_r_backup(), FailureScope::DiskArray);
  EXPECT_TRUE(plan.needs_transfer());
  EXPECT_DOUBLE_EQ(plan.transfer_gb,
                   workload::central_banking().data_size_gb);
}

TEST(PlanTransfer, MirrorRestoreSerializesOnArraysAndLink) {
  Environment env = tiny_env(workload::central_banking());
  Candidate cand = candidate_with(env, sync_r_backup());
  const auto& asg = cand.assignment(0);
  const auto plan = plan_recovery(env.app(0), asg, cand.pool(),
                                  FailureScope::DiskArray, env.params);
  EXPECT_EQ(plan.shared_devices.size(), 3u);
  EXPECT_NE(std::find(plan.shared_devices.begin(), plan.shared_devices.end(),
                      asg.primary_array),
            plan.shared_devices.end());
  EXPECT_NE(std::find(plan.shared_devices.begin(), plan.shared_devices.end(),
                      asg.mirror_array),
            plan.shared_devices.end());
  EXPECT_NE(std::find(plan.shared_devices.begin(), plan.shared_devices.end(),
                      asg.mirror_link),
            plan.shared_devices.end());
}

TEST(PlanTransfer, TapeRestoreSerializesOnLibraryAndArray) {
  Environment env = tiny_env(workload::student_accounts());
  Candidate cand = candidate_with(env, backup_only());
  const auto& asg = cand.assignment(0);
  const auto plan = plan_recovery(env.app(0), asg, cand.pool(),
                                  FailureScope::DiskArray, env.params);
  EXPECT_EQ(plan.shared_devices.size(), 2u);
  EXPECT_NE(std::find(plan.shared_devices.begin(), plan.shared_devices.end(),
                      asg.tape_library),
            plan.shared_devices.end());
}

// --- loss values ---

TEST(PlanLoss, FailoverLossIsMirrorStaleness) {
  Environment env = tiny_env(workload::central_banking());
  Candidate cand = candidate_with(env, sync_f_backup());
  const auto plan = plan_recovery(env.app(0), cand.assignment(0), cand.pool(),
                                  FailureScope::SiteDisaster, env.params);
  EXPECT_DOUBLE_EQ(plan.loss_hours,
                   staleness_hours(CopyLevel::Mirror, env.app(0),
                                   cand.assignment(0), cand.pool()));
}

TEST(PlanLoss, ReconstructTakesMinStalenessSurvivor) {
  // Reconstruct with mirror + backup after array failure: mirror is fresher
  // than tape, so loss should be the mirror's staleness.
  Environment env = tiny_env(workload::central_banking());
  Candidate cand = candidate_with(env, sync_r_backup());
  const auto plan = plan_recovery(env.app(0), cand.assignment(0), cand.pool(),
                                  FailureScope::DiskArray, env.params);
  EXPECT_EQ(plan.copy, CopyLevel::Mirror);
  EXPECT_LT(plan.loss_hours, 1.0);  // minutes, not days
}

TEST(Plan, RequiresAssignedApp) {
  Environment env = tiny_env(workload::central_banking());
  Candidate cand(&env);
  EXPECT_THROW(plan_recovery(env.app(0), cand.assignment(0), cand.pool(),
                             FailureScope::DataObject, env.params),
               InvalidArgument);
}

TEST(Plan, ToStringCoverage) {
  EXPECT_STREQ(to_string(RecoveryAction::Failover), "failover");
  EXPECT_STREQ(to_string(RecoveryAction::SnapshotRevert), "snapshot-revert");
  EXPECT_STREQ(to_string(RecoveryAction::Reconstruct), "reconstruct");
  EXPECT_STREQ(to_string(RecoveryAction::Unrecoverable), "unrecoverable");
}

}  // namespace
}  // namespace depstor
