#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace depstor {
namespace {

using testing::backup_only;
using testing::full_choice;
using testing::peer_env;
using testing::sync_f_backup;
using testing::sync_r_backup;
using testing::sync_r_only;

TEST(Candidate, StartsEmpty) {
  Environment env = peer_env(3);
  Candidate cand(&env);
  EXPECT_EQ(cand.assigned_count(), 0);
  EXPECT_EQ(cand.unassigned_apps(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(cand.pool().device_count(), 0);
}

TEST(Candidate, PlaceCreatesAllDevicesForFullTechnique) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup()));
  const auto& asg = cand.assignment(0);
  EXPECT_TRUE(asg.assigned);
  EXPECT_GE(asg.primary_array, 0);
  EXPECT_GE(asg.mirror_array, 0);
  EXPECT_GE(asg.tape_library, 0);
  EXPECT_GE(asg.mirror_link, 0);
  EXPECT_GE(asg.primary_compute, 0);
  EXPECT_GE(asg.failover_compute, 0);
  EXPECT_NO_THROW(asg.validate());
}

TEST(Candidate, BackupOnlyCreatesNoMirrorDevices) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(backup_only()));
  const auto& asg = cand.assignment(0);
  EXPECT_EQ(asg.mirror_array, -1);
  EXPECT_EQ(asg.mirror_link, -1);
  EXPECT_EQ(asg.secondary_site, -1);
  EXPECT_EQ(asg.failover_compute, -1);
  EXPECT_GE(asg.tape_library, 0);
}

TEST(Candidate, PrimaryAllocationsCoverDatasetAndAccess) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  const auto& app = env.app(0);
  const int array = cand.assignment(0).primary_array;
  EXPECT_GE(cand.pool().used_capacity_gb(array), app.data_size_gb);
  EXPECT_GE(cand.pool().used_bandwidth_mbps(array), app.avg_access_mbps);
}

TEST(Candidate, SnapshotSpaceScalesWithIntervalAndRetention) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  DesignChoice choice = full_choice(backup_only());
  choice.backup.snapshot_interval_hours = 12.0;
  choice.backup.snapshots_retained = 2;
  cand.place_app(0, choice);
  const auto& app = env.app(0);
  const double expected_snapshot_gb =
      2 * units::accumulated_gb(app.unique_update_mbps, 12.0);
  EXPECT_NEAR(cand.pool().used_capacity_gb(cand.assignment(0).primary_array),
              app.data_size_gb + expected_snapshot_gb, 1e-9);
}

TEST(Candidate, SyncMirrorLinksSizedForPeakRate) {
  Environment env = peer_env(1);  // B1: peak 50 MB/s
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup()));
  const int link = cand.assignment(0).mirror_link;
  EXPECT_DOUBLE_EQ(cand.pool().used_bandwidth_mbps(link), 50.0);
  // 50 MB/s over 20 MB/s Net-High links → 3 links.
  EXPECT_EQ(cand.pool().device(link).bandwidth_units, 3);
}

TEST(Candidate, AsyncMirrorLinksSizedForAverageRate) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(testing::async_f_backup()));
  const int link = cand.assignment(0).mirror_link;
  EXPECT_DOUBLE_EQ(cand.pool().used_bandwidth_mbps(link), 5.0);
  EXPECT_EQ(cand.pool().device(link).bandwidth_units, 1);
}

TEST(Candidate, DevicesAreReusedAcrossApps) {
  Environment env = peer_env(2);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  cand.place_app(1, full_choice(sync_r_backup()));
  EXPECT_EQ(cand.assignment(0).primary_array,
            cand.assignment(1).primary_array);
  EXPECT_EQ(cand.assignment(0).tape_library,
            cand.assignment(1).tape_library);
  EXPECT_EQ(cand.assignment(0).mirror_link, cand.assignment(1).mirror_link);
}

TEST(Candidate, RemoveReleasesEverything) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup()));
  cand.remove_app(0);
  EXPECT_FALSE(cand.is_assigned(0));
  for (const auto& dev : cand.pool().devices()) {
    EXPECT_FALSE(cand.pool().in_use(dev.id));
  }
}

TEST(Candidate, DoublePlacementRejected) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(backup_only()));
  EXPECT_THROW(cand.place_app(0, full_choice(backup_only())),
               InvalidArgument);
}

TEST(Candidate, MirrorNeedsDistinctConnectedSite) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  DesignChoice choice = full_choice(sync_r_backup());
  choice.secondary_site = choice.primary_site;
  EXPECT_THROW(cand.place_app(0, choice), InvalidArgument);
}

TEST(Candidate, PlacementIsTransactionalOnFailure) {
  // An app too large for the chosen array must leave the candidate
  // unchanged (no partial allocations, no assignment).
  ApplicationSpec huge = workload::web_service();
  huge.data_size_gb = 200000.0;  // exceeds any array
  Environment env = testing::tiny_env(huge);
  Candidate cand(&env);
  EXPECT_THROW(cand.place_app(0, full_choice(sync_r_backup())),
               InfeasibleError);
  EXPECT_FALSE(cand.is_assigned(0));
  for (const auto& dev : cand.pool().devices()) {
    EXPECT_TRUE(cand.pool().allocations(dev.id).empty());
  }
}

TEST(Candidate, SetBackupConfigReplacesAllocations) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(backup_only()));
  const double before =
      cand.pool().used_capacity_gb(cand.assignment(0).primary_array);
  BackupChainConfig cfg = cand.assignment(0).backup;
  cfg.snapshot_interval_hours *= 2.0;  // double the snapshot space
  cand.set_backup_config(0, cfg);
  const double after =
      cand.pool().used_capacity_gb(cand.assignment(0).primary_array);
  EXPECT_GT(after, before);
  EXPECT_DOUBLE_EQ(cand.assignment(0).backup.snapshot_interval_hours,
                   cfg.snapshot_interval_hours);
}

TEST(Candidate, SetBackupConfigRestoresOnFailure) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(backup_only()));
  const auto original = cand.assignment(0).backup;
  BackupChainConfig bad = original;
  bad.backups_retained = 1000;  // cartridge demand beyond any library
  EXPECT_THROW(cand.set_backup_config(0, bad), InfeasibleError);
  EXPECT_TRUE(cand.is_assigned(0));
  EXPECT_EQ(cand.assignment(0).backup.backups_retained,
            original.backups_retained);
}

TEST(Candidate, SetBackupConfigRequiresBackupTechnique) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_only()));
  EXPECT_THROW(cand.set_backup_config(0, BackupChainConfig{}),
               InvalidArgument);
}

TEST(Candidate, ChoiceIsRemembered) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  const DesignChoice choice = full_choice(sync_f_backup());
  cand.place_app(0, choice);
  EXPECT_EQ(cand.choice(0).technique.name, choice.technique.name);
  EXPECT_EQ(cand.choice(0).primary_array_type, choice.primary_array_type);
  cand.remove_app(0);
  EXPECT_THROW(cand.choice(0), InvalidArgument);
}

TEST(Candidate, CopyIsIndependent) {
  Environment env = peer_env(2);
  Candidate a(&env);
  a.place_app(0, full_choice(sync_r_backup()));
  Candidate b = a;
  b.place_app(1, full_choice(backup_only()));
  EXPECT_EQ(a.assigned_count(), 1);
  EXPECT_EQ(b.assigned_count(), 2);
  b.remove_app(0);
  EXPECT_TRUE(a.is_assigned(0));
}

TEST(Candidate, UnknownDeviceTypeRejected) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  DesignChoice choice = full_choice(backup_only());
  choice.primary_array_type = "NotARealArray";
  EXPECT_THROW(cand.place_app(0, choice), InvalidArgument);
}

TEST(Candidate, CheckFeasiblePassesForValidDesign) {
  Environment env = peer_env(4);
  Candidate cand(&env);
  for (int i = 0; i < 4; ++i) {
    cand.place_app(i, full_choice(sync_r_backup()));
  }
  EXPECT_NO_THROW(cand.check_feasible());
}

TEST(Candidate, FailoverConsumesComputeAtSecondary) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup(), 0, 1));
  const int spare = cand.assignment(0).failover_compute;
  ASSERT_GE(spare, 0);
  EXPECT_EQ(cand.pool().device(spare).site_id, 1);
  EXPECT_EQ(cand.pool().device(spare).type.kind, DeviceKind::Compute);
}

}  // namespace
}  // namespace depstor
