#include <gtest/gtest.h>

#include "resources/catalog.hpp"
#include "resources/device.hpp"
#include "util/check.hpp"

namespace depstor {
namespace {

// --- disk array semantics ---

TEST(DiskArray, BandwidthDerivesFromCapacityUnits) {
  const auto xp = resources::xp1200();
  EXPECT_DOUBLE_EQ(xp.bandwidth_mbps(4, 0), 100.0);  // 4 × 25 MB/s
  EXPECT_DOUBLE_EQ(xp.bandwidth_mbps(0, 0), 0.0);
}

TEST(DiskArray, AggregateBandwidthCeiling) {
  const auto xp = resources::xp1200();
  // 1024 units × 25 = 25,600 but the controller caps at 512.
  EXPECT_DOUBLE_EQ(xp.bandwidth_mbps(1024, 0), 512.0);
  EXPECT_DOUBLE_EQ(xp.max_bandwidth_mbps(), 512.0);
}

TEST(DiskArray, CapacityPerUnit) {
  const auto xp = resources::xp1200();
  EXPECT_DOUBLE_EQ(xp.capacity_gb(10), 1430.0);
  EXPECT_DOUBLE_EQ(xp.max_capacity_gb(), 1024 * 143.0);
}

TEST(DiskArray, MinCapacityUnitsCoversBothDimensions) {
  const auto xp = resources::xp1200();
  // 1000 GB needs 7 units; 300 MB/s needs 12 units → 12.
  EXPECT_EQ(xp.min_capacity_units(1000.0, 300.0), 12);
  // Capacity-bound case: 5000 GB needs 35 units; 100 MB/s needs 4 → 35.
  EXPECT_EQ(xp.min_capacity_units(5000.0, 100.0), 35);
}

TEST(DiskArray, MinCapacityUnitsImpossible) {
  const auto xp = resources::xp1200();
  EXPECT_EQ(xp.min_capacity_units(0.0, 600.0), -1);   // above 512 MB/s cap
  EXPECT_EQ(xp.min_capacity_units(2e5, 0.0), -1);     // above max capacity
  const auto msa = resources::msa1500();
  EXPECT_EQ(msa.min_capacity_units(0.0, 200.0), -1);  // above 128 MB/s cap
}

TEST(DiskArray, ZeroDemandNeedsZeroUnits) {
  EXPECT_EQ(resources::xp1200().min_capacity_units(0.0, 0.0), 0);
}

// --- tape library semantics ---

TEST(TapeLibrary, DrivesAreBandwidthUnits) {
  const auto tape = resources::tape_library_high();
  EXPECT_DOUBLE_EQ(tape.bandwidth_mbps(0, 2), 240.0);  // 2 drives × 120
  EXPECT_EQ(tape.min_bandwidth_units(130.0), 2);
  EXPECT_EQ(tape.min_bandwidth_units(0.0), 0);
}

TEST(TapeLibrary, DriveCountCapped) {
  const auto tape = resources::tape_library_med();  // max 4 drives, 400 MB/s
  // The library's aggregate ceiling (400 MB/s) binds before 4 × 120 MB/s.
  EXPECT_EQ(tape.min_bandwidth_units(400.0), 4);
  EXPECT_EQ(tape.min_bandwidth_units(401.0), -1);
}

TEST(TapeLibrary, CartridgesAreCapacityUnits) {
  const auto tape = resources::tape_library_high();
  EXPECT_EQ(tape.min_capacity_units(121.0, 0.0), 3);  // 3 × 60 GB
  EXPECT_EQ(tape.min_capacity_units(720 * 60.0 + 1, 0.0), -1);
}

TEST(TapeLibrary, AggregateBandwidthCeiling) {
  const auto tape = resources::tape_library_med();
  // 4 drives × 120 = 480 but the library caps at 400.
  EXPECT_DOUBLE_EQ(tape.bandwidth_mbps(0, 4), 400.0);
}

// --- network semantics ---

TEST(Network, LinksAreBandwidthUnits) {
  const auto net = resources::network_high();
  EXPECT_DOUBLE_EQ(net.bandwidth_mbps(0, 3), 60.0);
  EXPECT_EQ(net.min_bandwidth_units(45.0), 3);
  EXPECT_EQ(net.min_bandwidth_units(20.0 * 32 + 1), -1);
}

TEST(Network, NoCapacityDimension) {
  const auto net = resources::network_high();
  EXPECT_EQ(net.max_capacity_units, 0);
  EXPECT_EQ(net.min_capacity_units(0.0, 0.0), 0);
  EXPECT_EQ(net.min_capacity_units(1.0, 0.0), -1);  // cannot store data
}

// --- purchase costs (Table 3) ---

TEST(PurchaseCost, DiskArray) {
  const auto xp = resources::xp1200();
  EXPECT_DOUBLE_EQ(xp.purchase_cost(10, 0), 375000.0 + 10 * 8723.0);
}

TEST(PurchaseCost, TapeLibrarySplitsDrivesAndCartridges) {
  const auto tape = resources::tape_library_high();
  // fixed + 5 cartridges × $100 + 2 drives × $18,400.
  EXPECT_DOUBLE_EQ(tape.purchase_cost(5, 2), 141000.0 + 500.0 + 36800.0);
}

TEST(PurchaseCost, NetworkPerLink) {
  EXPECT_DOUBLE_EQ(resources::network_high().purchase_cost(0, 2), 1000000.0);
  EXPECT_DOUBLE_EQ(resources::network_med().purchase_cost(0, 2), 400000.0);
}

TEST(PurchaseCost, ComputePerSlot) {
  EXPECT_DOUBLE_EQ(resources::compute_high().purchase_cost(3, 0), 375000.0);
}

// --- catalog integrity ---

TEST(ResourceCatalog, Table3Values) {
  const auto eva = resources::eva8000();
  EXPECT_DOUBLE_EQ(eva.fixed_cost, 123000.0);
  EXPECT_DOUBLE_EQ(eva.cost_per_capacity_unit, 3720.0);
  EXPECT_EQ(eva.max_capacity_units, 512);
  EXPECT_DOUBLE_EQ(eva.bandwidth_unit_mbps, 10.0);
  EXPECT_DOUBLE_EQ(eva.max_aggregate_bandwidth_mbps, 256.0);

  const auto msa = resources::msa1500();
  EXPECT_EQ(msa.max_capacity_units, 128);
  EXPECT_DOUBLE_EQ(msa.bandwidth_unit_mbps, 8.0);
}

TEST(ResourceCatalog, ClassesOrdered) {
  EXPECT_EQ(resources::xp1200().cls, DeviceClass::High);
  EXPECT_EQ(resources::eva8000().cls, DeviceClass::Med);
  EXPECT_EQ(resources::msa1500().cls, DeviceClass::Low);
  EXPECT_EQ(resources::tape_library_high().cls, DeviceClass::High);
  EXPECT_EQ(resources::network_med().cls, DeviceClass::Med);
}

TEST(ResourceCatalog, GroupAccessors) {
  EXPECT_EQ(resources::disk_arrays().size(), 3u);
  EXPECT_EQ(resources::tape_libraries().size(), 2u);
  EXPECT_EQ(resources::networks().size(), 2u);
  for (const auto& a : resources::disk_arrays()) {
    EXPECT_EQ(a.kind, DeviceKind::DiskArray);
  }
}

TEST(ResourceCatalog, ByNameRoundTrip) {
  EXPECT_EQ(resources::by_name("XP1200").name, "XP1200");
  EXPECT_EQ(resources::by_name("Net-Med").kind, DeviceKind::NetworkLink);
  EXPECT_THROW(resources::by_name("FloppyTower"), InvalidArgument);
}

TEST(ResourceCatalog, AllValidate) {
  for (const auto& d :
       {resources::xp1200(), resources::eva8000(), resources::msa1500(),
        resources::tape_library_high(), resources::tape_library_med(),
        resources::network_high(), resources::network_med(),
        resources::compute_high()}) {
    EXPECT_NO_THROW(d.validate()) << d.name;
  }
}

// --- DeviceInstance ---

TEST(DeviceInstance, LinkBetweenIsUnordered) {
  DeviceInstance dev;
  dev.type = resources::network_high();
  dev.site_id = 0;
  dev.site_b_id = 2;
  EXPECT_TRUE(dev.is_link_between(0, 2));
  EXPECT_TRUE(dev.is_link_between(2, 0));
  EXPECT_FALSE(dev.is_link_between(0, 1));
}

TEST(DeviceInstance, NonLinkNeverMatches) {
  DeviceInstance dev;
  dev.type = resources::xp1200();
  dev.site_id = 0;
  EXPECT_FALSE(dev.is_link_between(0, 1));
}

TEST(DeviceTypeSpec, ToStringCoverage) {
  EXPECT_STREQ(to_string(DeviceKind::DiskArray), "disk-array");
  EXPECT_STREQ(to_string(DeviceKind::TapeLibrary), "tape-library");
  EXPECT_STREQ(to_string(DeviceKind::NetworkLink), "network");
  EXPECT_STREQ(to_string(DeviceKind::Compute), "compute");
  EXPECT_STREQ(to_string(DeviceClass::High), "High");
}

TEST(DeviceTypeSpec, ValidateRejectsNegativeCosts) {
  auto d = resources::xp1200();
  d.fixed_cost = -1.0;
  EXPECT_THROW(d.validate(), InvalidArgument);
}

}  // namespace
}  // namespace depstor
