#include <gtest/gtest.h>

#include "solver/config_solver.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::backup_only;
using testing::full_choice;
using testing::peer_env;
using testing::sync_r_backup;

TEST(ConfigSolver, NeverWorsensCost) {
  Environment env = peer_env(4);
  Candidate cand(&env);
  for (int i = 0; i < 4; ++i) cand.place_app(i, full_choice(sync_r_backup()));
  const double before = cand.evaluate().total();
  ConfigSolver solver(&env);
  const double after = solver.solve(cand).total();
  EXPECT_LE(after, before + 1e-6);
}

TEST(ConfigSolver, ReturnedCostMatchesCandidateState) {
  Environment env = peer_env(2);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  cand.place_app(1, full_choice(backup_only()));
  ConfigSolver solver(&env);
  const CostBreakdown reported = solver.solve(cand);
  EXPECT_NEAR(reported.total(), cand.evaluate().total(), 1e-6);
}

TEST(ConfigSolver, PicksIntervalsFromPolicyRanges) {
  Environment env = peer_env(4);
  Candidate cand(&env);
  for (int i = 0; i < 4; ++i) cand.place_app(i, full_choice(sync_r_backup()));
  ConfigSolver solver(&env);
  solver.solve(cand);
  for (const auto& asg : cand.assignments()) {
    if (!asg.has_backup()) continue;
    const auto& snaps = env.policies.snapshot_intervals_hours;
    const auto& backups = env.policies.backup_intervals_hours;
    EXPECT_NE(std::find(snaps.begin(), snaps.end(),
                        asg.backup.snapshot_interval_hours),
              snaps.end());
    EXPECT_NE(std::find(backups.begin(), backups.end(),
                        asg.backup.backup_interval_hours),
              backups.end());
  }
}

TEST(ConfigSolver, ShrinksSnapshotIntervalForLossCriticalApps) {
  // Central banking loses $5M/hr: the sweep should pick the shortest
  // snapshot interval the policy allows.
  Environment env = peer_env(1);  // app 0 is B1
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  ConfigSolver solver(&env);
  solver.solve(cand);
  const double min_snap =
      *std::min_element(env.policies.snapshot_intervals_hours.begin(),
                        env.policies.snapshot_intervals_hours.end());
  EXPECT_DOUBLE_EQ(cand.assignment(0).backup.snapshot_interval_hours,
                   min_snap);
}

TEST(ConfigSolver, KeepsLongIntervalsForCheapApps) {
  // Student accounts ($5K/hr): tighter snapshots buy almost nothing, so the
  // solver should not pay capacity for the minimum interval.
  Environment env = testing::tiny_env(workload::student_accounts());
  Candidate cand(&env);
  cand.place_app(0, full_choice(backup_only()));
  ConfigSolver solver(&env);
  solver.solve(cand);
  const double min_snap =
      *std::min_element(env.policies.snapshot_intervals_hours.begin(),
                        env.policies.snapshot_intervals_hours.end());
  EXPECT_GE(cand.assignment(0).backup.snapshot_interval_hours, min_snap);
}

TEST(ConfigSolver, IncrementLoopRespectsPairLinkLimit) {
  Environment env = scenarios::multi_site(4, 4, /*max_links=*/2);
  Candidate cand(&env);
  for (int i = 0; i < 4; ++i) {
    cand.place_app(i, full_choice(testing::async_r_backup(), 0, 1));
  }
  ConfigSolver solver(&env);
  solver.solve(cand);
  EXPECT_NO_THROW(cand.check_feasible());
  int links = 0;
  for (int id : cand.pool().links_between(0, 1)) {
    links += cand.pool().device(id).bandwidth_units;
  }
  EXPECT_LE(links, 2);
}

TEST(ConfigSolver, IncrementsBoundedByPolicy) {
  Environment env = peer_env(4);
  env.policies.max_resource_increments = 0;
  Candidate cand(&env);
  for (int i = 0; i < 4; ++i) cand.place_app(i, full_choice(sync_r_backup()));
  ConfigSolver solver(&env);
  solver.solve(cand);
  for (const auto& dev : cand.pool().devices()) {
    EXPECT_EQ(dev.extra_bandwidth_units, 0);
    EXPECT_EQ(dev.extra_capacity_units, 0);
  }
}

TEST(ConfigSolver, StatsCountEvaluations) {
  Environment env = peer_env(2);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  ConfigSolver solver(&env);
  solver.solve(cand);
  EXPECT_GT(solver.stats().evaluations, 0);
}

TEST(ConfigSolver, IncrementsOnlySkipsIntervalSweep) {
  Environment env = peer_env(2);
  Candidate cand(&env);
  DesignChoice choice = full_choice(sync_r_backup());
  choice.backup.snapshot_interval_hours = 24.0;  // deliberately non-optimal
  cand.place_app(0, choice);
  ConfigSolver solver(&env);
  solver.solve_increments_only(cand);
  EXPECT_DOUBLE_EQ(cand.assignment(0).backup.snapshot_interval_hours, 24.0);
}

TEST(ConfigSolver, ScopedSolveIgnoresComputeDevicesInScope) {
  // solve_for_app's device scope includes the app's compute devices (so the
  // scope is the true assignment footprint), but the increment loop must
  // still never buy units on them: compute has no bandwidth units to add
  // and is not a disk array. Pins the devices_of() fix in config_solver.cpp.
  Environment env = peer_env(3);
  Candidate cand(&env);
  for (int i = 0; i < 3; ++i) {
    cand.place_app(i, full_choice(testing::sync_f_backup()));
  }
  ASSERT_GE(cand.assignment(1).primary_compute, 0);
  ASSERT_GE(cand.assignment(1).failover_compute, 0);
  ConfigSolver solver(&env);
  const CostBreakdown cost = solver.solve_for_app(cand, 1);
  for (const auto& dev : cand.pool().devices()) {
    if (dev.type.kind == DeviceKind::Compute) {
      EXPECT_EQ(dev.extra_bandwidth_units, 0);
      EXPECT_EQ(dev.extra_capacity_units, 0);
    }
  }
  EXPECT_DOUBLE_EQ(cost.total(), cand.evaluate().total());
}

TEST(ConfigSolver, DeterministicForSameInput) {
  Environment env = peer_env(4);
  Candidate a(&env);
  Candidate b(&env);
  for (int i = 0; i < 4; ++i) {
    a.place_app(i, full_choice(sync_r_backup()));
    b.place_app(i, full_choice(sync_r_backup()));
  }
  ConfigSolver solver(&env);
  EXPECT_DOUBLE_EQ(solver.solve(a).total(), solver.solve(b).total());
}

}  // namespace
}  // namespace depstor
