#include <gtest/gtest.h>

#include <algorithm>

#include "model/recovery_sim.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace depstor {
namespace {

using testing::backup_only;
using testing::full_choice;
using testing::peer_env;
using testing::sync_f_backup;
using testing::sync_r_backup;

/// Candidate with `n` apps all placed with the same technique at site 0
/// (mirrors at site 1) on the same devices.
Candidate colocated(const Environment& env, const TechniqueSpec& technique,
                    int n) {
  Candidate cand(&env);
  for (int i = 0; i < n; ++i) {
    cand.place_app(i, full_choice(technique));
  }
  return cand;
}

// --- scenario enumeration ---

TEST(Scenarios, OneObjectFailurePerAssignedApp) {
  Environment env = peer_env(4);
  Candidate cand = colocated(env, sync_r_backup(), 4);
  const auto scenarios = enumerate_scenarios(
      env.apps, cand.assignments(), cand.pool(), env.failures, true);
  const auto objects = std::count_if(
      scenarios.begin(), scenarios.end(), [](const ScenarioSpec& s) {
        return s.scope == FailureScope::DataObject;
      });
  EXPECT_EQ(objects, 4);
}

TEST(Scenarios, ArraysAndSitesDeduplicated) {
  Environment env = peer_env(4);
  Candidate cand = colocated(env, sync_r_backup(), 4);
  // All four primaries share one array at one site.
  const auto scenarios = enumerate_scenarios(
      env.apps, cand.assignments(), cand.pool(), env.failures, true);
  const auto arrays = std::count_if(
      scenarios.begin(), scenarios.end(), [](const ScenarioSpec& s) {
        return s.scope == FailureScope::DiskArray;
      });
  const auto sites = std::count_if(
      scenarios.begin(), scenarios.end(), [](const ScenarioSpec& s) {
        return s.scope == FailureScope::SiteDisaster;
      });
  EXPECT_EQ(arrays, 1);
  EXPECT_EQ(sites, 1);
  EXPECT_EQ(scenarios.size(), 6u);
}

TEST(Scenarios, PartialCandidatesOnlyCoverAssignedApps) {
  Environment env = peer_env(4);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  const auto scenarios = enumerate_scenarios(
      env.apps, cand.assignments(), cand.pool(), env.failures);
  EXPECT_EQ(scenarios.size(), 3u);  // 1 object + 1 array + 1 site
}

TEST(Scenarios, RatesComeFromFailureModel) {
  Environment env = peer_env(1);
  env.failures.data_object_rate = 2.0;
  env.failures.disk_array_rate = 0.5;
  env.failures.site_disaster_rate = 0.25;
  Candidate cand = colocated(env, sync_r_backup(), 1);
  for (const auto& s : enumerate_scenarios(env.apps, cand.assignments(),
                                           cand.pool(), env.failures)) {
    EXPECT_DOUBLE_EQ(s.annual_rate, env.failures.rate(s.scope));
  }
}

TEST(Scenarios, NamesFilledOnlyOnRequest) {
  Environment env = peer_env(1);
  Candidate cand = colocated(env, sync_r_backup(), 1);
  const auto without = enumerate_scenarios(env.apps, cand.assignments(),
                                           cand.pool(), env.failures);
  EXPECT_TRUE(without.front().name.empty());
  const auto with = enumerate_scenarios(env.apps, cand.assignments(),
                                        cand.pool(), env.failures, true);
  EXPECT_FALSE(with.front().name.empty());
}

// --- affected apps ---

TEST(AffectedApps, ObjectFailureHitsOneApp) {
  Environment env = peer_env(4);
  Candidate cand = colocated(env, sync_r_backup(), 4);
  ScenarioSpec s;
  s.scope = FailureScope::DataObject;
  s.failed_app = 2;
  EXPECT_EQ(affected_apps(s, cand.assignments(), cand.pool().topology()), (std::vector<int>{2}));
}

TEST(AffectedApps, ArrayFailureHitsCohostedPrimaries) {
  Environment env = peer_env(4);
  Candidate cand = colocated(env, sync_r_backup(), 4);
  ScenarioSpec s;
  s.scope = FailureScope::DiskArray;
  s.failed_array = cand.assignment(0).primary_array;
  EXPECT_EQ(affected_apps(s, cand.assignments(), cand.pool().topology()).size(), 4u);
}

TEST(AffectedApps, MirrorHostingArrayFailureHitsNobody) {
  Environment env = peer_env(1);
  Candidate cand = colocated(env, sync_r_backup(), 1);
  ScenarioSpec s;
  s.scope = FailureScope::DiskArray;
  s.failed_array = cand.assignment(0).mirror_array;
  EXPECT_TRUE(affected_apps(s, cand.assignments(), cand.pool().topology()).empty());
}

TEST(AffectedApps, SiteDisasterHitsPrimariesOnly) {
  Environment env = peer_env(2);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup(), 0, 1));
  cand.place_app(1, full_choice(sync_r_backup(), 1, 0));
  ScenarioSpec s;
  s.scope = FailureScope::SiteDisaster;
  s.failed_site = 0;
  EXPECT_EQ(affected_apps(s, cand.assignments(), cand.pool().topology()), (std::vector<int>{0}));
}

// --- recovery bandwidth / headroom ---

TEST(RecoveryBandwidth, FailedAppsFreeTheirAllocations) {
  Environment env = peer_env(2);
  Candidate cand = colocated(env, sync_r_backup(), 2);
  const int array = cand.assignment(0).primary_array;
  const double total = cand.pool().device(array).bandwidth_mbps();
  // Both apps failed: all provisioned bandwidth is available.
  EXPECT_DOUBLE_EQ(recovery_bandwidth_mbps(cand.pool(), array, {0, 1}), total);
  // Only app 0 failed: app 1's allocations still run.
  const double partial = recovery_bandwidth_mbps(cand.pool(), array, {0});
  EXPECT_LT(partial, total);
  EXPECT_GT(partial, 0.0);
}

TEST(RecoveryBandwidth, FlooredWhenNoHeadroom) {
  Environment env = peer_env(2);
  Candidate cand = colocated(env, sync_r_backup(), 2);
  const int array = cand.assignment(0).primary_array;
  // Nobody failed → only the idle headroom remains; with a tightly sized
  // array that may be ~0, and the floor keeps it positive.
  const double bw = recovery_bandwidth_mbps(cand.pool(), array, {});
  EXPECT_GE(bw, kMinRecoveryBandwidthMbps);
}

// --- simulation: contention and serialization ---

TEST(Simulation, PriorityOrderIsByPenaltySum) {
  Environment env = peer_env(4);  // B, C, W, S — shared primary array
  Candidate cand = colocated(env, sync_r_backup(), 4);
  ScenarioSpec s;
  s.scope = FailureScope::DiskArray;
  s.failed_array = cand.assignment(0).primary_array;
  s.annual_rate = 1.0;
  const auto results = simulate_recovery(s, env.apps, cand.assignments(),
                                         cand.pool(), env.params);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(env.apps[static_cast<std::size_t>(results[i - 1].app_id)]
                  .penalty_rate_sum(),
              env.apps[static_cast<std::size_t>(results[i].app_id)]
                  .penalty_rate_sum());
  }
}

TEST(Simulation, SharedResourceSerializesOutages) {
  Environment env = peer_env(4);
  Candidate cand = colocated(env, sync_r_backup(), 4);
  ScenarioSpec s;
  s.scope = FailureScope::DiskArray;
  s.failed_array = cand.assignment(0).primary_array;
  const auto results = simulate_recovery(s, env.apps, cand.assignments(),
                                         cand.pool(), env.params);
  // Strictly increasing completion times down the priority order: each app
  // waits for the previous transfers on the shared array/link.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GT(results[i].outage_hours, results[i - 1].outage_hours);
  }
}

TEST(Simulation, FailoverAppsDoNotQueueBehindTransfers) {
  Environment env = peer_env(4);
  Candidate cand(&env);
  // Three reconstruct apps and one failover app on the same array.
  cand.place_app(0, full_choice(sync_r_backup()));
  cand.place_app(1, full_choice(sync_r_backup()));
  cand.place_app(2, full_choice(sync_r_backup()));
  cand.place_app(3, full_choice(sync_f_backup()));
  ScenarioSpec s;
  s.scope = FailureScope::DiskArray;
  s.failed_array = cand.assignment(3).primary_array;
  const auto results = simulate_recovery(s, env.apps, cand.assignments(),
                                         cand.pool(), env.params);
  for (const auto& r : results) {
    if (r.app_id == 3) {
      EXPECT_EQ(r.action, RecoveryAction::Failover);
      EXPECT_LT(r.outage_hours, 1.0);
    }
  }
}

TEST(Simulation, ReconstructOutageIncludesRepairLead) {
  Environment env = peer_env(1);
  Candidate cand = colocated(env, sync_r_backup(), 1);
  ScenarioSpec s;
  s.scope = FailureScope::DiskArray;
  s.failed_array = cand.assignment(0).primary_array;
  const auto results = simulate_recovery(s, env.apps, cand.assignments(),
                                         cand.pool(), env.params);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].outage_hours, env.params.repair_disk_array_hours);
}

TEST(Simulation, UnrecoverableChargedFixedOutage) {
  Environment env = peer_env(1);
  Candidate cand = colocated(env, testing::sync_f_only(), 1);
  ScenarioSpec s;
  s.scope = FailureScope::DataObject;
  s.failed_app = 0;
  const auto results = simulate_recovery(s, env.apps, cand.assignments(),
                                         cand.pool(), env.params);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].action, RecoveryAction::Unrecoverable);
  EXPECT_DOUBLE_EQ(results[0].outage_hours,
                   env.params.unprotected_loss_hours);
  EXPECT_DOUBLE_EQ(results[0].loss_hours, env.params.unprotected_loss_hours);
}

TEST(Simulation, MoreTapeDrivesShortenTapeRestore) {
  Environment env = peer_env(1);
  env.apps[0] = workload::web_service();  // 4.3 TB: tape restore is long
  env.apps[0].id = 0;
  Candidate cand = colocated(env, backup_only(), 1);
  ScenarioSpec s;
  s.scope = FailureScope::DiskArray;
  s.failed_array = cand.assignment(0).primary_array;

  const double base = simulate_recovery(s, env.apps, cand.assignments(),
                                        cand.pool(), env.params)[0]
                          .outage_hours;
  cand.set_extra_bandwidth_units(cand.assignment(0).tape_library, 3);
  const double faster = simulate_recovery(s, env.apps, cand.assignments(),
                                          cand.pool(), env.params)[0]
                            .outage_hours;
  EXPECT_LT(faster, base);
}

TEST(Simulation, MoreLinksShortenMirrorRestore) {
  Environment env = peer_env(1);
  env.apps[0] = workload::web_service();
  env.apps[0].id = 0;
  Candidate cand = colocated(env, sync_r_backup(), 1);
  ScenarioSpec s;
  s.scope = FailureScope::SiteDisaster;
  s.failed_site = 0;

  const double base = simulate_recovery(s, env.apps, cand.assignments(),
                                        cand.pool(), env.params)[0]
                          .outage_hours;
  cand.set_extra_bandwidth_units(cand.assignment(0).mirror_link, 8);
  const double faster = simulate_recovery(s, env.apps, cand.assignments(),
                                          cand.pool(), env.params)[0]
                            .outage_hours;
  EXPECT_LT(faster, base);
}

TEST(Simulation, DeterministicTieBreakOnEqualPriorities) {
  Environment env = peer_env(8);  // two of each class → equal-priority pairs
  Candidate cand = colocated(env, sync_r_backup(), 8);
  ScenarioSpec s;
  s.scope = FailureScope::DiskArray;
  s.failed_array = cand.assignment(0).primary_array;
  const auto a = simulate_recovery(s, env.apps, cand.assignments(),
                                   cand.pool(), env.params);
  const auto b = simulate_recovery(s, env.apps, cand.assignments(),
                                   cand.pool(), env.params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].app_id, b[i].app_id);
    EXPECT_DOUBLE_EQ(a[i].outage_hours, b[i].outage_hours);
  }
}

}  // namespace
}  // namespace depstor
