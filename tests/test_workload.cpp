#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"

namespace depstor {
namespace {

// --- Table 1 catalog values ---

TEST(WorkloadCatalog, CentralBankingMatchesTable1) {
  const auto b = workload::central_banking();
  EXPECT_EQ(b.type_code, "B");
  EXPECT_DOUBLE_EQ(b.outage_penalty_rate, 5e6);
  EXPECT_DOUBLE_EQ(b.loss_penalty_rate, 5e6);
  EXPECT_DOUBLE_EQ(b.data_size_gb, 1300.0);
  EXPECT_DOUBLE_EQ(b.avg_update_mbps, 5.0);
  EXPECT_DOUBLE_EQ(b.peak_update_mbps, 50.0);
  EXPECT_DOUBLE_EQ(b.avg_access_mbps, 50.0);
  EXPECT_EQ(b.category(), AppCategory::Gold);
}

TEST(WorkloadCatalog, WebServiceMatchesTable1) {
  const auto w = workload::web_service();
  EXPECT_DOUBLE_EQ(w.outage_penalty_rate, 5e6);
  EXPECT_DOUBLE_EQ(w.loss_penalty_rate, 5e3);
  EXPECT_DOUBLE_EQ(w.data_size_gb, 4300.0);
  EXPECT_DOUBLE_EQ(w.avg_update_mbps, 2.0);
  EXPECT_EQ(w.category(), AppCategory::Silver);
}

TEST(WorkloadCatalog, ConsumerBankingMatchesTable1) {
  const auto c = workload::consumer_banking();
  EXPECT_DOUBLE_EQ(c.outage_penalty_rate, 5e3);
  EXPECT_DOUBLE_EQ(c.loss_penalty_rate, 5e6);
  EXPECT_DOUBLE_EQ(c.data_size_gb, 4300.0);
  EXPECT_EQ(c.category(), AppCategory::Silver);
}

TEST(WorkloadCatalog, StudentAccountsMatchesTable1) {
  const auto s = workload::student_accounts();
  EXPECT_DOUBLE_EQ(s.outage_penalty_rate, 5e3);
  EXPECT_DOUBLE_EQ(s.loss_penalty_rate, 5e3);
  EXPECT_DOUBLE_EQ(s.data_size_gb, 500.0);
  EXPECT_EQ(s.category(), AppCategory::Bronze);
}

TEST(WorkloadCatalog, UniqueUpdateRateDerived) {
  const auto b = workload::central_banking();
  EXPECT_DOUBLE_EQ(b.unique_update_mbps,
                   workload::kUniqueUpdateFraction * b.avg_update_mbps);
}

TEST(WorkloadCatalog, InstanceNumbersNames) {
  EXPECT_EQ(workload::central_banking(3).name, "B3");
  EXPECT_EQ(workload::web_service(1).name, "W1");
}

TEST(WorkloadCatalog, ByTypeCode) {
  EXPECT_EQ(workload::by_type_code("B").type_code, "B");
  EXPECT_EQ(workload::by_type_code("S", 2).name, "S2");
  EXPECT_THROW(workload::by_type_code("Z"), InvalidArgument);
}

TEST(WorkloadCatalog, AllPrototypesAreValidAndDistinct) {
  const auto all = workload::all_prototypes();
  ASSERT_EQ(all.size(), 4u);
  for (const auto& app : all) EXPECT_NO_THROW(app.validate());
  EXPECT_NE(all[0].type_code, all[1].type_code);
}

// --- categorization ---

TEST(Category, ThresholdsSplitGoldSilverBronze) {
  ApplicationSpec app = workload::student_accounts();
  app.outage_penalty_rate = 7e6;
  app.loss_penalty_rate = 0.0;
  EXPECT_EQ(app.category(), AppCategory::Gold);
  app.outage_penalty_rate = 2e6;
  EXPECT_EQ(app.category(), AppCategory::Silver);
  app.outage_penalty_rate = 2e3;
  EXPECT_EQ(app.category(), AppCategory::Bronze);
}

TEST(Category, CustomThresholds) {
  ApplicationSpec app = workload::student_accounts();  // sum 10K
  CategoryThresholds t;
  t.gold_min = 5e3;
  t.silver_min = 1e3;
  EXPECT_EQ(app.category(t), AppCategory::Gold);
}

TEST(Category, OrderingIsMeaningful) {
  EXPECT_GT(static_cast<int>(AppCategory::Gold),
            static_cast<int>(AppCategory::Silver));
  EXPECT_GT(static_cast<int>(AppCategory::Silver),
            static_cast<int>(AppCategory::Bronze));
}

TEST(Category, ToString) {
  EXPECT_STREQ(to_string(AppCategory::Gold), "Gold");
  EXPECT_STREQ(to_string(AppCategory::Silver), "Silver");
  EXPECT_STREQ(to_string(AppCategory::Bronze), "Bronze");
}

// --- validation ---

TEST(ApplicationSpec, ValidateRejectsBadSpecs) {
  ApplicationSpec app = workload::central_banking();
  app.data_size_gb = 0.0;
  EXPECT_THROW(app.validate(), InvalidArgument);

  app = workload::central_banking();
  app.peak_update_mbps = app.avg_update_mbps / 2.0;  // peak < avg
  EXPECT_THROW(app.validate(), InvalidArgument);

  app = workload::central_banking();
  app.unique_update_mbps = app.avg_update_mbps * 2.0;  // unique > avg
  EXPECT_THROW(app.validate(), InvalidArgument);

  app = workload::central_banking();
  app.name.clear();
  EXPECT_THROW(app.validate(), InvalidArgument);
}

TEST(ApplicationSpec, PenaltyRateSum) {
  const auto w = workload::web_service();
  EXPECT_DOUBLE_EQ(w.penalty_rate_sum(), 5e6 + 5e3);
}

// --- generators ---

TEST(Generator, MixedSetCyclesClasses) {
  const auto apps = workload::mixed_set(8);
  ASSERT_EQ(apps.size(), 8u);
  EXPECT_EQ(apps[0].type_code, "B");
  EXPECT_EQ(apps[1].type_code, "C");
  EXPECT_EQ(apps[2].type_code, "W");
  EXPECT_EQ(apps[3].type_code, "S");
  EXPECT_EQ(apps[4].type_code, "B");
  EXPECT_EQ(apps[4].name, "B2");
}

TEST(Generator, MixedSetDenseIds) {
  const auto apps = workload::mixed_set(6);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    EXPECT_EQ(apps[i].id, static_cast<int>(i));
  }
}

TEST(Generator, MixedSetPrefixBalance) {
  // Every prefix of 4k applications contains k of each class (§4.4 scaling).
  const auto apps = workload::mixed_set(16);
  for (int k = 1; k <= 4; ++k) {
    int b = 0;
    for (int i = 0; i < 4 * k; ++i) {
      if (apps[static_cast<std::size_t>(i)].type_code == "B") ++b;
    }
    EXPECT_EQ(b, k);
  }
}

TEST(Generator, RejectsNonPositiveCount) {
  EXPECT_THROW(workload::mixed_set(0), InvalidArgument);
}

class PerturbedSet : public ::testing::TestWithParam<int> {};

TEST_P(PerturbedSet, InvariantsHoldUnderJitter) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto apps = workload::perturbed_set(12, 0.3, rng);
  ASSERT_EQ(apps.size(), 12u);
  for (const auto& app : apps) {
    EXPECT_NO_THROW(app.validate());
    EXPECT_GE(app.peak_update_mbps, app.avg_update_mbps);
    EXPECT_GE(app.avg_access_mbps, app.avg_update_mbps);
    EXPECT_LE(app.unique_update_mbps, app.avg_update_mbps);
  }
}

TEST_P(PerturbedSet, PenaltyRatesUnchanged) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto jittered = workload::perturbed_set(8, 0.3, rng);
  const auto exact = workload::mixed_set(8);
  for (std::size_t i = 0; i < jittered.size(); ++i) {
    EXPECT_DOUBLE_EQ(jittered[i].outage_penalty_rate,
                     exact[i].outage_penalty_rate);
    EXPECT_DOUBLE_EQ(jittered[i].loss_penalty_rate,
                     exact[i].loss_penalty_rate);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerturbedSet, ::testing::Range(1, 9));

TEST(Generator, PerturbedRejectsBadJitter) {
  Rng rng(1);
  EXPECT_THROW(workload::perturbed_set(4, -0.1, rng), InvalidArgument);
  EXPECT_THROW(workload::perturbed_set(4, 1.0, rng), InvalidArgument);
}

}  // namespace
}  // namespace depstor
