// Exhaustive technique × failure-scope behavior matrix.
//
// Every entry is a literal expectation (not derived from the model's own
// feature flags) so regressions in the action/copy selection logic cannot
// hide behind a shared helper.
#include <gtest/gtest.h>

#include "model/recovery_plan.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

struct MatrixCase {
  const char* technique;  // Table 2 name
  FailureScope scope;
  RecoveryAction action;
  CopyLevel copy;
};

class ActionMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ActionMatrix, BehavesPerTable) {
  const auto& c = GetParam();
  Environment env = testing::tiny_env(workload::central_banking());
  Candidate cand =
      testing::candidate_with(env, protection::by_name(c.technique));
  const auto plan = plan_recovery(env.app(0), cand.assignment(0), cand.pool(),
                                  c.scope, env.params);
  EXPECT_EQ(plan.action, c.action)
      << c.technique << " / " << to_string(c.scope);
  EXPECT_EQ(plan.copy, c.copy) << c.technique << " / " << to_string(c.scope);
}

constexpr FailureScope kObject = FailureScope::DataObject;
constexpr FailureScope kArray = FailureScope::DiskArray;
constexpr FailureScope kSite = FailureScope::SiteDisaster;

INSTANTIATE_TEST_SUITE_P(
    AllTechniquesAllScopes, ActionMatrix,
    ::testing::Values(
        // --- Sync mirror (F) with backup ---
        MatrixCase{"Sync mirror (F) with backup", kObject,
                   RecoveryAction::SnapshotRevert, CopyLevel::Snapshot},
        MatrixCase{"Sync mirror (F) with backup", kArray,
                   RecoveryAction::Failover, CopyLevel::Mirror},
        MatrixCase{"Sync mirror (F) with backup", kSite,
                   RecoveryAction::Failover, CopyLevel::Mirror},
        // --- Sync mirror (R) with backup ---
        MatrixCase{"Sync mirror (R) with backup", kObject,
                   RecoveryAction::SnapshotRevert, CopyLevel::Snapshot},
        MatrixCase{"Sync mirror (R) with backup", kArray,
                   RecoveryAction::Reconstruct, CopyLevel::Mirror},
        MatrixCase{"Sync mirror (R) with backup", kSite,
                   RecoveryAction::Reconstruct, CopyLevel::Mirror},
        // --- Async mirror (F) with backup ---
        MatrixCase{"Async mirror (F) with backup", kObject,
                   RecoveryAction::SnapshotRevert, CopyLevel::Snapshot},
        MatrixCase{"Async mirror (F) with backup", kArray,
                   RecoveryAction::Failover, CopyLevel::Mirror},
        MatrixCase{"Async mirror (F) with backup", kSite,
                   RecoveryAction::Failover, CopyLevel::Mirror},
        // --- Async mirror (R) with backup ---
        MatrixCase{"Async mirror (R) with backup", kObject,
                   RecoveryAction::SnapshotRevert, CopyLevel::Snapshot},
        MatrixCase{"Async mirror (R) with backup", kArray,
                   RecoveryAction::Reconstruct, CopyLevel::Mirror},
        MatrixCase{"Async mirror (R) with backup", kSite,
                   RecoveryAction::Reconstruct, CopyLevel::Mirror},
        // --- Sync mirror (F), no backup ---
        MatrixCase{"Sync mirror (F)", kObject,
                   RecoveryAction::Unrecoverable, CopyLevel::None},
        MatrixCase{"Sync mirror (F)", kArray, RecoveryAction::Failover,
                   CopyLevel::Mirror},
        MatrixCase{"Sync mirror (F)", kSite, RecoveryAction::Failover,
                   CopyLevel::Mirror},
        // --- Sync mirror (R), no backup ---
        MatrixCase{"Sync mirror (R)", kObject,
                   RecoveryAction::Unrecoverable, CopyLevel::None},
        MatrixCase{"Sync mirror (R)", kArray, RecoveryAction::Reconstruct,
                   CopyLevel::Mirror},
        MatrixCase{"Sync mirror (R)", kSite, RecoveryAction::Reconstruct,
                   CopyLevel::Mirror},
        // --- Async mirror (F), no backup ---
        MatrixCase{"Async mirror (F)", kObject,
                   RecoveryAction::Unrecoverable, CopyLevel::None},
        MatrixCase{"Async mirror (F)", kArray, RecoveryAction::Failover,
                   CopyLevel::Mirror},
        MatrixCase{"Async mirror (F)", kSite, RecoveryAction::Failover,
                   CopyLevel::Mirror},
        // --- Async mirror (R), no backup ---
        MatrixCase{"Async mirror (R)", kObject,
                   RecoveryAction::Unrecoverable, CopyLevel::None},
        MatrixCase{"Async mirror (R)", kArray, RecoveryAction::Reconstruct,
                   CopyLevel::Mirror},
        MatrixCase{"Async mirror (R)", kSite, RecoveryAction::Reconstruct,
                   CopyLevel::Mirror},
        // --- Tape backup only ---
        MatrixCase{"Tape backup", kObject, RecoveryAction::SnapshotRevert,
                   CopyLevel::Snapshot},
        MatrixCase{"Tape backup", kArray, RecoveryAction::Reconstruct,
                   CopyLevel::TapeBackup},
        MatrixCase{"Tape backup", kSite, RecoveryAction::Reconstruct,
                   CopyLevel::Vault}));

}  // namespace
}  // namespace depstor
