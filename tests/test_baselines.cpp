#include <gtest/gtest.h>

#include <map>

#include "baselines/human_heuristic.hpp"
#include "baselines/random_heuristic.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::peer_env;

BaselineOptions quick(std::uint64_t seed = 1) {
  BaselineOptions o;
  o.time_budget_ms = 400.0;
  o.seed = seed;
  return o;
}

// --- human heuristic ---

TEST(HumanHeuristic, FindsFeasiblePeerSitesDesign) {
  Environment env = peer_env(8);
  HumanHeuristic heuristic(&env, quick());
  const BaselineResult result = heuristic.solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.best->assigned_count(), 8);
  EXPECT_NO_THROW(result.best->check_feasible());
  EXPECT_GT(result.designs_feasible, 0);
  EXPECT_GE(result.designs_tried, result.designs_feasible);
}

TEST(HumanHeuristic, ClassMatchedArrays) {
  Environment env = peer_env(1);
  HumanHeuristic heuristic(&env, quick());
  EXPECT_EQ(heuristic.array_for_class(AppCategory::Gold).name, "XP1200");
  EXPECT_EQ(heuristic.array_for_class(AppCategory::Silver).name, "EVA8000");
  EXPECT_EQ(heuristic.array_for_class(AppCategory::Bronze).name, "MSA1500");
}

TEST(HumanHeuristic, ClassMatchedTapeAndNetwork) {
  Environment env = peer_env(1);
  HumanHeuristic heuristic(&env, quick());
  EXPECT_EQ(heuristic.tape_for_class(AppCategory::Gold).cls,
            DeviceClass::High);
  EXPECT_EQ(heuristic.tape_for_class(AppCategory::Silver).cls,
            DeviceClass::Med);
  EXPECT_EQ(heuristic.tape_for_class(AppCategory::Bronze).cls,
            DeviceClass::Med);
  EXPECT_EQ(heuristic.network_for_class(AppCategory::Gold).cls,
            DeviceClass::High);
}

TEST(HumanHeuristic, TechniquesComeFromAppClassStandard) {
  // One technique per class: every B app shares its technique with every
  // other B app in the returned design, and its class matches.
  Environment env = peer_env(8);
  HumanHeuristic heuristic(&env, quick(3));
  const BaselineResult result = heuristic.solve();
  ASSERT_TRUE(result.feasible);
  std::map<AppCategory, std::string> seen;
  for (const auto& asg : result.best->assignments()) {
    const AppCategory cls = env.app_category(asg.app_id);
    EXPECT_EQ(asg.technique.category, cls) << env.app(asg.app_id).name;
    const auto [it, inserted] = seen.emplace(cls, asg.technique.name);
    EXPECT_EQ(it->second, asg.technique.name)
        << "class standards must be uniform within a design";
  }
}

TEST(HumanHeuristic, SpreadsPrimariesAcrossSites) {
  Environment env = peer_env(8);
  HumanHeuristic heuristic(&env, quick(4));
  const BaselineResult result = heuristic.solve();
  ASSERT_TRUE(result.feasible);
  std::vector<int> load(2, 0);
  for (const auto& asg : result.best->assignments()) {
    ++load[static_cast<std::size_t>(asg.primary_site)];
  }
  // Eight apps over two sites: both sites host some primaries.
  EXPECT_GT(load[0], 0);
  EXPECT_GT(load[1], 0);
}

TEST(HumanHeuristic, DeterministicUnderSeedAndDesignCap) {
  Environment env = peer_env(4);
  BaselineOptions o = quick(9);
  o.time_budget_ms = 60000.0;
  o.max_designs = 10;
  const auto r1 = HumanHeuristic(&env, o).solve();
  Environment env2 = peer_env(4);
  const auto r2 = HumanHeuristic(&env2, o).solve();
  ASSERT_TRUE(r1.feasible);
  ASSERT_TRUE(r2.feasible);
  EXPECT_DOUBLE_EQ(r1.cost.total(), r2.cost.total());
  EXPECT_EQ(r1.designs_tried, r2.designs_tried);
}

TEST(HumanHeuristic, InfeasibleEnvironmentGivesNoResult) {
  Environment env = peer_env(1);  // B1 is gold: needs mirroring
  env.topology.pair_limits.clear();
  env.validate();
  BaselineOptions o = quick();
  o.time_budget_ms = 150.0;
  const auto result = HumanHeuristic(&env, o).solve();
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.designs_feasible, 0);
}

// --- random heuristic ---

TEST(RandomHeuristic, FindsFeasiblePeerSitesDesign) {
  Environment env = peer_env(8);
  RandomHeuristic heuristic(&env, quick(5));
  const BaselineResult result = heuristic.solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.best->assigned_count(), 8);
  EXPECT_NO_THROW(result.best->check_feasible());
}

TEST(RandomHeuristic, KeepsTheMinimumCostDesign) {
  Environment env = peer_env(4);
  BaselineOptions o = quick(6);
  o.max_designs = 30;
  o.time_budget_ms = 60000.0;
  const auto result = RandomHeuristic(&env, o).solve();
  ASSERT_TRUE(result.feasible);
  // Rerun with a single design and the same seed: the 30-design run must be
  // no worse than its own first design.
  Environment env2 = peer_env(4);
  BaselineOptions first = o;
  first.max_designs = 1;
  const auto one = RandomHeuristic(&env2, first).solve();
  if (one.feasible) {
    EXPECT_LE(result.cost.total(), one.cost.total() + 1e-6);
  }
}

TEST(RandomHeuristic, DeterministicUnderSeedAndDesignCap) {
  Environment env = peer_env(4);
  BaselineOptions o = quick(7);
  o.time_budget_ms = 60000.0;
  o.max_designs = 10;
  const auto r1 = RandomHeuristic(&env, o).solve();
  Environment env2 = peer_env(4);
  const auto r2 = RandomHeuristic(&env2, o).solve();
  EXPECT_EQ(r1.feasible, r2.feasible);
  if (r1.feasible) {
    EXPECT_DOUBLE_EQ(r1.cost.total(), r2.cost.total());
  }
}

TEST(RandomHeuristic, SurvivesResourceStarvedEnvironments) {
  // 24 apps in the 4-site environment: the guided searches struggle but the
  // random generator keeps producing testable designs (§4.4).
  Environment env = scenarios::multi_site(24, 4, 6);
  BaselineOptions o = quick(8);
  o.time_budget_ms = 2500.0;
  const auto result = RandomHeuristic(&env, o).solve();
  EXPECT_GT(result.designs_tried, 0);
  // Feasible designs exist at this scale; the random heuristic finds some.
  EXPECT_TRUE(result.feasible);
}

TEST(Baselines, RespectMaxDesignsCap) {
  Environment env = peer_env(2);
  BaselineOptions o = quick(10);
  o.max_designs = 3;
  o.time_budget_ms = 60000.0;
  EXPECT_EQ(HumanHeuristic(&env, o).solve().designs_tried, 3);
  EXPECT_EQ(RandomHeuristic(&env, o).solve().designs_tried, 3);
}

}  // namespace
}  // namespace depstor
