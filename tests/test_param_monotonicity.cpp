// Monotonicity of the evaluated cost in every ModelParams knob: turning any
// single recovery/penalty parameter worse must never make a fixed design
// cheaper. These sweeps pin the sign conventions of the whole model — a
// regression that flips one (e.g. a lead time subtracted instead of added)
// fails loudly here.
#include <gtest/gtest.h>

#include <functional>

#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::full_choice;
using testing::peer_env;

/// Fixed mixed design: two failover apps, one reconstruct, one tape-only —
/// so every parameter's code path is exercised.
Environment fixture_env() { return peer_env(4); }

Candidate fixture_design(const Environment& env) {
  Candidate cand(&env);
  cand.place_app(0, full_choice(testing::sync_f_backup()));
  cand.place_app(1, full_choice(testing::sync_r_backup()));
  cand.place_app(2, full_choice(testing::async_f_backup()));
  cand.place_app(3, full_choice(testing::backup_only()));
  return cand;
}

struct Knob {
  const char* name;
  std::function<void(ModelParams&, double)> set;
  std::vector<double> values;  ///< increasing severity
};

class ParamMonotonicity : public ::testing::TestWithParam<int> {};

const std::vector<Knob>& knobs() {
  static const std::vector<Knob> kKnobs = {
      {"failover_hours",
       [](ModelParams& p, double v) { p.failover_hours = v; },
       {0.05, 0.1, 0.5, 2.0}},
      {"snapshot_restore_hours",
       [](ModelParams& p, double v) { p.snapshot_restore_hours = v; },
       {0.1, 0.25, 1.0, 4.0}},
      {"tape_load_hours",
       [](ModelParams& p, double v) { p.tape_load_hours = v; },
       {0.1, 0.5, 2.0}},
      {"detection_hours",
       [](ModelParams& p, double v) { p.detection_hours = v; },
       {0.0, 0.5, 2.0, 8.0}},
      {"repair_disk_array_hours",
       [](ModelParams& p, double v) { p.repair_disk_array_hours = v; },
       {1.0, 6.0, 12.0, 48.0}},
      {"repair_site_hours",
       [](ModelParams& p, double v) { p.repair_site_hours = v; },
       {6.0, 24.0, 72.0}},
      {"unprotected_loss_hours",
       [](ModelParams& p, double v) { p.unprotected_loss_hours = v; },
       {24.0, 720.0, 2000.0}},
      {"vault_retrieval_hours",
       [](ModelParams& p, double v) { p.vault_retrieval_hours = v; },
       {2.0, 24.0, 96.0}},
      {"vault_annual_fee",
       [](ModelParams& p, double v) { p.vault_annual_fee = v; },
       {0.0, 5000.0, 50000.0}},
      {"incremental_load_hours",
       [](ModelParams& p, double v) { p.incremental_load_hours = v; },
       {0.0, 0.1, 1.0}},
  };
  return kKnobs;
}

TEST_P(ParamMonotonicity, WorseParameterNeverCheapens) {
  const Knob& knob = knobs().at(static_cast<std::size_t>(GetParam()));
  Environment env = fixture_env();
  Candidate cand = fixture_design(env);
  double previous = -1.0;
  for (double value : knob.values) {
    ModelParams params = env.params;
    knob.set(params, value);
    params.validate();
    const double total = evaluate_cost(env.apps, cand.assignments(),
                                       cand.pool(), env.failures, params)
                             .total();
    EXPECT_GE(total, previous - 1e-6)
        << knob.name << " = " << value << " made the design cheaper";
    previous = total;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKnobs, ParamMonotonicity,
                         ::testing::Range(0, 10));

TEST(ParamMonotonicity, LongerDeviceLifetimeOnlyCutsOutlay) {
  Environment env = fixture_env();
  Candidate cand = fixture_design(env);
  ModelParams longer = env.params;
  longer.device_lifetime_years = env.params.device_lifetime_years * 2.0;
  const auto base = evaluate_cost(env.apps, cand.assignments(), cand.pool(),
                                  env.failures, env.params);
  const auto amortized = evaluate_cost(env.apps, cand.assignments(),
                                       cand.pool(), env.failures, longer);
  EXPECT_LT(amortized.outlay, base.outlay);
  EXPECT_NEAR(amortized.penalty(), base.penalty(), base.penalty() * 1e-9);
}

TEST(ParamMonotonicity, SpareRepairBoundedByNormalRepair) {
  // repair_with_spare_hours above the normal lead must not make recovery
  // slower than having no spare (plan takes the min).
  Environment env = testing::tiny_env(workload::web_service());
  Candidate cand(&env);
  cand.place_app(0, full_choice(testing::sync_r_backup()));
  cand.set_spare_array(0, "XP1200", true);
  ModelParams silly = env.params;
  silly.repair_with_spare_hours = env.params.repair_disk_array_hours * 10.0;
  const double with_silly_spare =
      evaluate_cost(env.apps, cand.assignments(), cand.pool(), env.failures,
                    silly)
          .penalty();
  Environment env2 = testing::tiny_env(workload::web_service());
  Candidate bare(&env2);
  bare.place_app(0, full_choice(testing::sync_r_backup()));
  const double without_spare =
      evaluate_cost(env2.apps, bare.assignments(), bare.pool(),
                    env2.failures, env2.params)
          .penalty();
  EXPECT_LE(with_silly_spare, without_spare + 1e-6);
}

}  // namespace
}  // namespace depstor
