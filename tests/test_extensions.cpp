// Tests for the model extensions beyond the paper's baseline:
// incremental backup cycles (level 2) and recovery-ordering policies.
#include <gtest/gtest.h>

#include "model/recovery_sim.hpp"
#include "solver/config_solver.hpp"
#include "test_helpers.hpp"
#include "util/units.hpp"

namespace depstor {
namespace {

using testing::backup_only;
using testing::candidate_with;
using testing::full_choice;
using testing::peer_env;
using testing::sync_r_backup;
using testing::tiny_env;

// --- incremental backup cycles ---

TEST(IncrementalBackup, CycleCounting) {
  BackupChainConfig cfg;
  cfg.backup_interval_hours = 168.0;
  cfg.incremental_interval_hours = 24.0;
  cfg.cycle = BackupCycleMode::FullOnly;
  EXPECT_EQ(cfg.incrementals_per_cycle(), 0);
  cfg.cycle = BackupCycleMode::FullPlusIncrementals;
  EXPECT_EQ(cfg.incrementals_per_cycle(), 6);  // 7 cuts, one is the full
  cfg.incremental_interval_hours = 84.0;
  EXPECT_EQ(cfg.incrementals_per_cycle(), 1);
}

TEST(IncrementalBackup, ValidateOrdering) {
  BackupChainConfig cfg;
  cfg.cycle = BackupCycleMode::FullPlusIncrementals;
  cfg.incremental_interval_hours = cfg.snapshot_interval_hours / 2.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.incremental_interval_hours = cfg.backup_interval_hours * 2.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.incremental_interval_hours = 24.0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(IncrementalBackup, SizeFromUniqueUpdates) {
  const auto app = workload::central_banking();  // unique = 2 MB/s
  BackupChainConfig cfg;
  cfg.cycle = BackupCycleMode::FullPlusIncrementals;
  cfg.incremental_interval_hours = 24.0;
  EXPECT_NEAR(incremental_size_gb(app, cfg),
              units::accumulated_gb(app.unique_update_mbps, 24.0), 1e-9);
  cfg.cycle = BackupCycleMode::FullOnly;
  EXPECT_DOUBLE_EQ(incremental_size_gb(app, cfg), 0.0);
}

TEST(IncrementalBackup, FreshensTapeStaleness) {
  Environment env = tiny_env(workload::central_banking());
  Candidate cand = candidate_with(env, backup_only());

  const double full_only = staleness_hours(
      CopyLevel::TapeBackup, env.app(0), cand.assignment(0), cand.pool());

  BackupChainConfig cfg = cand.assignment(0).backup;
  cfg.cycle = BackupCycleMode::FullPlusIncrementals;
  cfg.incremental_interval_hours = 24.0;
  cand.set_backup_config(0, cfg);
  const double with_incr = staleness_hours(
      CopyLevel::TapeBackup, env.app(0), cand.assignment(0), cand.pool());

  EXPECT_LT(with_incr, full_only);
  EXPECT_LT(with_incr, 24.0 + cfg.snapshot_interval_hours + 1.0);
}

TEST(IncrementalBackup, SlowsTapeRestore) {
  Environment env = tiny_env(workload::central_banking());
  Candidate cand = candidate_with(env, backup_only());

  const auto plan_full = plan_recovery(env.app(0), cand.assignment(0),
                                       cand.pool(), FailureScope::DiskArray,
                                       env.params);

  BackupChainConfig cfg = cand.assignment(0).backup;
  cfg.cycle = BackupCycleMode::FullPlusIncrementals;
  cfg.incremental_interval_hours = 24.0;
  cand.set_backup_config(0, cfg);
  const auto plan_incr = plan_recovery(env.app(0), cand.assignment(0),
                                       cand.pool(), FailureScope::DiskArray,
                                       env.params);

  EXPECT_GT(plan_incr.transfer_gb, plan_full.transfer_gb);
  EXPECT_GT(plan_incr.fixed_restore_hours, plan_full.fixed_restore_hours);
}

TEST(IncrementalBackup, ConsumesExtraCartridges) {
  Environment env = tiny_env(workload::central_banking());
  Candidate cand = candidate_with(env, backup_only());
  const double cap_full =
      cand.pool().used_capacity_gb(cand.assignment(0).tape_library);

  BackupChainConfig cfg = cand.assignment(0).backup;
  cfg.cycle = BackupCycleMode::FullPlusIncrementals;
  cfg.incremental_interval_hours = 24.0;
  cand.set_backup_config(0, cfg);
  const double cap_incr =
      cand.pool().used_capacity_gb(cand.assignment(0).tape_library);
  EXPECT_GT(cap_incr, cap_full);
}

TEST(IncrementalBackup, ConfigSolverPicksIncrementalsForLossCriticalApps) {
  // Consumer banking: $5M/hr loss rate, cheap outage. Fresher tape copies
  // are worth far more than the restore slowdown, so the sweep should pick
  // the incremental cycle. (Only the backup chain protects against array
  // failure here, because we strip the mirror.)
  Environment env = tiny_env(workload::consumer_banking());
  Candidate cand = candidate_with(env, backup_only());
  ConfigSolver solver(&env);
  solver.solve(cand);
  EXPECT_EQ(cand.assignment(0).backup.cycle,
            BackupCycleMode::FullPlusIncrementals);
}

TEST(IncrementalBackup, DisabledByPolicy) {
  Environment env = tiny_env(workload::consumer_banking());
  env.policies.allow_incremental_backups = false;
  Candidate cand = candidate_with(env, backup_only());
  ConfigSolver solver(&env);
  solver.solve(cand);
  EXPECT_EQ(cand.assignment(0).backup.cycle, BackupCycleMode::FullOnly);
}

TEST(IncrementalBackup, ToStringCoverage) {
  EXPECT_STREQ(to_string(BackupCycleMode::FullOnly), "full-only");
  EXPECT_STREQ(to_string(BackupCycleMode::FullPlusIncrementals),
               "full+incrementals");
}

// --- recovery ordering policies ---

Candidate shared_array_candidate(const Environment& env, int n) {
  Candidate cand(&env);
  for (int i = 0; i < n; ++i) cand.place_app(i, full_choice(sync_r_backup()));
  return cand;
}

TEST(RecoveryOrder, PriorityPutsExpensiveAppsFirst) {
  Environment env = peer_env(4);
  env.params.recovery_order = RecoveryOrder::PriorityPenalty;
  Candidate cand = shared_array_candidate(env, 4);
  ScenarioSpec s;
  s.scope = FailureScope::DiskArray;
  s.failed_array = cand.assignment(0).primary_array;
  const auto results = simulate_recovery(s, env.apps, cand.assignments(),
                                         cand.pool(), env.params);
  // B1 (penalty sum $10M/hr) recovers first; S1 ($10K/hr) last.
  EXPECT_EQ(results.front().app_id, 0);
  EXPECT_EQ(results.back().app_id, 3);
}

TEST(RecoveryOrder, FifoOrdersById) {
  Environment env = peer_env(4);
  env.params.recovery_order = RecoveryOrder::FifoById;
  Candidate cand = shared_array_candidate(env, 4);
  ScenarioSpec s;
  s.scope = FailureScope::DiskArray;
  s.failed_array = cand.assignment(0).primary_array;
  const auto results = simulate_recovery(s, env.apps, cand.assignments(),
                                         cand.pool(), env.params);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].app_id, static_cast<int>(i));
  }
}

TEST(RecoveryOrder, ShortestFirstOrdersBySoloDuration) {
  // Same penalty class but very different dataset sizes → shortest-first
  // puts the small dataset ahead.
  Environment env = peer_env(2);
  env.apps[0] = workload::web_service();      // 4300 GB
  env.apps[1] = workload::web_service(2);     // same class
  env.apps[1].data_size_gb = 100.0;           // tiny
  env.apps[0].id = 0;
  env.apps[1].id = 1;
  env.params.recovery_order = RecoveryOrder::ShortestFirst;
  Candidate cand = shared_array_candidate(env, 2);
  ScenarioSpec s;
  s.scope = FailureScope::DiskArray;
  s.failed_array = cand.assignment(0).primary_array;
  const auto results = simulate_recovery(s, env.apps, cand.assignments(),
                                         cand.pool(), env.params);
  EXPECT_EQ(results.front().app_id, 1);
}

TEST(RecoveryOrder, PriorityMinimizesWeightedOutageCost) {
  // The paper's rule should beat FIFO on penalty-weighted outage for a mix
  // of expensive and cheap apps contending for one array.
  Environment env = peer_env(4);
  Candidate cand = shared_array_candidate(env, 4);
  ScenarioSpec s;
  s.scope = FailureScope::DiskArray;
  s.failed_array = cand.assignment(0).primary_array;

  auto weighted_outage = [&](RecoveryOrder order) {
    ModelParams p = env.params;
    p.recovery_order = order;
    double total = 0.0;
    for (const auto& r :
         simulate_recovery(s, env.apps, cand.assignments(), cand.pool(), p)) {
      total += r.outage_hours *
               env.apps[static_cast<std::size_t>(r.app_id)]
                   .outage_penalty_rate;
    }
    return total;
  };
  EXPECT_LE(weighted_outage(RecoveryOrder::PriorityPenalty),
            weighted_outage(RecoveryOrder::FifoById));
}

TEST(RecoveryOrder, PolicyDoesNotChangeWhoRecovers) {
  Environment env = peer_env(4);
  Candidate cand = shared_array_candidate(env, 4);
  ScenarioSpec s;
  s.scope = FailureScope::DiskArray;
  s.failed_array = cand.assignment(0).primary_array;
  for (RecoveryOrder order : {RecoveryOrder::PriorityPenalty,
                              RecoveryOrder::ShortestFirst,
                              RecoveryOrder::FifoById}) {
    ModelParams p = env.params;
    p.recovery_order = order;
    const auto results =
        simulate_recovery(s, env.apps, cand.assignments(), cand.pool(), p);
    EXPECT_EQ(results.size(), 4u) << to_string(order);
  }
}

TEST(RecoveryOrder, ToStringCoverage) {
  EXPECT_STREQ(to_string(RecoveryOrder::PriorityPenalty), "priority-penalty");
  EXPECT_STREQ(to_string(RecoveryOrder::ShortestFirst), "shortest-first");
  EXPECT_STREQ(to_string(RecoveryOrder::FifoById), "fifo-by-id");
}

// --- scoped configuration solving ---

TEST(ScopedConfigSolver, SolveForAppMatchesStateAndCost) {
  Environment env = peer_env(4);
  Candidate cand(&env);
  for (int i = 0; i < 4; ++i) cand.place_app(i, full_choice(sync_r_backup()));
  ConfigSolver solver(&env);
  const CostBreakdown reported = solver.solve_for_app(cand, 0);
  EXPECT_NEAR(reported.total(), cand.evaluate().total(), 1e-6);
}

TEST(ScopedConfigSolver, ScopedNeverWorseThanUntouched) {
  Environment env = peer_env(4);
  Candidate cand(&env);
  for (int i = 0; i < 4; ++i) cand.place_app(i, full_choice(sync_r_backup()));
  const double before = cand.evaluate().total();
  ConfigSolver solver(&env);
  const double after = solver.solve_for_app(cand, 0).total();
  EXPECT_LE(after, before + 1e-6);
}

TEST(ScopedConfigSolver, FullSolveAtLeastAsGoodAsScoped) {
  Environment env = peer_env(4);
  Candidate scoped(&env);
  Candidate full(&env);
  for (int i = 0; i < 4; ++i) {
    scoped.place_app(i, full_choice(sync_r_backup()));
    full.place_app(i, full_choice(sync_r_backup()));
  }
  ConfigSolver solver(&env);
  const double scoped_cost = solver.solve_for_app(scoped, 0).total();
  const double full_cost = solver.solve(full).total();
  EXPECT_LE(full_cost, scoped_cost + 1e-6);
}

}  // namespace
}  // namespace depstor
