// Intra-solve parallel refit search (DESIGN.md §9).
//
// The determinism contract under test: with `exec.deterministic` set, a
// solve explores a node set that depends only on (options, seed) — every
// search node draws from an RNG stream derived from its structural
// coordinates, and merges are slot-ordered (chunked claims group slots but
// never reorder the merge) — so any `intra_node_workers` value must return
// bit-identical results. Plus cancellation mid-fan and nested submission
// from a batch-engine job on a one-worker pool. TaskGroup's own semantics
// live in test_task_group.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/scenarios.hpp"
#include "engine/engine.hpp"
#include "engine/worker_pool.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::solve_design;

// ---------------------------------------------- determinism oracle (§9)

DesignSolverOptions oracle_options(std::uint64_t seed) {
  DesignSolverOptions o;
  o.seed = seed;
  o.max_repetitions = 1;
  o.breadth = 2;
  o.depth = 3;
  o.max_refit_iterations = 3;
  return o;
}

/// Solve `options` sequentially, then at every worker count in {2, 4, 8}
/// with the fan forced onto the pool, and require bit-identical totals and
/// node counts from each — the §9 contract at full strength.
void expect_worker_counts_match(const Environment& env,
                                const DesignSolverOptions& options) {
  ExecutionOptions seq;
  seq.deterministic = true;
  const SolveResult a = solve_design(env, options, seq);
  ASSERT_TRUE(a.feasible) << "seed " << options.seed;
  for (int workers : {2, 4, 8}) {
    ExecutionOptions par = seq;
    par.intra_node_workers = workers;
    par.intra_min_fan = 1;  // force pooling: exercise the batched fan
    const SolveResult b = solve_design(env, options, par);
    ASSERT_EQ(a.feasible, b.feasible)
        << "seed " << options.seed << " workers " << workers;
    // Bit-identical totals, not approximate: the parallel solve runs the
    // same node tree with the same derived RNG streams.
    EXPECT_EQ(a.cost.total(), b.cost.total())
        << "seed " << options.seed << " workers " << workers;
    EXPECT_EQ(a.cost.outlay, b.cost.outlay)
        << "seed " << options.seed << " workers " << workers;
    EXPECT_EQ(a.cost.outage_penalty, b.cost.outage_penalty)
        << "seed " << options.seed << " workers " << workers;
    EXPECT_EQ(a.cost.loss_penalty, b.cost.loss_penalty)
        << "seed " << options.seed << " workers " << workers;
    EXPECT_EQ(a.nodes_evaluated, b.nodes_evaluated)
        << "seed " << options.seed << " workers " << workers;
    EXPECT_EQ(a.refit_iterations, b.refit_iterations)
        << "seed " << options.seed << " workers " << workers;
  }
}

void expect_parallel_matches_sequential(const Environment& env,
                                        std::uint64_t seed) {
  expect_worker_counts_match(env, oracle_options(seed));
}

TEST(ParallelRefit, BitIdenticalToSequentialPeerSites4) {
  const Environment env = scenarios::peer_sites(4);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    expect_parallel_matches_sequential(env, seed);
  }
}

TEST(ParallelRefit, BitIdenticalToSequentialPeerSites8) {
  const Environment env = scenarios::peer_sites(8);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    expect_parallel_matches_sequential(env, seed);
  }
}

TEST(ParallelRefit, BitIdenticalToSequentialMultiSite) {
  const Environment env = scenarios::multi_site(8, 3, 4);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    expect_parallel_matches_sequential(env, seed);
  }
}

TEST(ParallelRefit, BitIdenticalWithWideFanAndChunkedClaims) {
  // Breadth 8 exceeds 3x the 2-worker chunk target, so fan_chunk groups
  // multiple slots per claim — the batched path the coarse oracle above
  // never reaches. Merges must stay slot-ordered regardless of grouping.
  const Environment env = scenarios::multi_site(8, 3, 4);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    DesignSolverOptions options = oracle_options(seed);
    options.breadth = 8;
    options.depth = 2;
    options.max_refit_iterations = 2;
    expect_worker_counts_match(env, options);
  }
}

TEST(ParallelRefit, ParallelTasksAreCountedWhenFanned) {
  const Environment env = scenarios::peer_sites(4);
  ExecutionOptions par;
  par.deterministic = true;
  par.intra_node_workers = 4;
  par.intra_min_fan = 1;  // force pooling even for the narrow oracle fan
  const SolveResult result = solve_design(env, oracle_options(7), par);
  ASSERT_TRUE(result.feasible);
  // With a real pool at least part of the fan runs as pool tasks.
  EXPECT_GT(result.refit_parallel_tasks + result.refit_steal_count, 0);
  EXPECT_TRUE(result.refit_fanned);
}

// ------------------------------------------------- fan-threshold guard

TEST(ParallelRefit, NarrowFanStaysInlineUnderThreshold) {
  // breadth 2 < an explicit intra_min_fan of 4: the solve must not hand a
  // single task to the pool, and SolveResult records the inline path.
  const Environment env = scenarios::peer_sites(4);
  ExecutionOptions par;
  par.deterministic = true;
  par.intra_node_workers = 4;
  par.intra_min_fan = 4;
  const SolveResult result = solve_design(env, oracle_options(7), par);
  ASSERT_TRUE(result.feasible);
  EXPECT_FALSE(result.refit_fanned);
  EXPECT_EQ(result.refit_parallel_tasks, 0);
  EXPECT_EQ(result.intra_min_fan_used, 4);  // explicit values pass through
}

TEST(ParallelRefit, FanThresholdNeverChangesResults) {
  // Guarded (inline), forced (pooled), and auto-calibrated fans walk the
  // same structural node tree with the same derived RNG streams — totals
  // must agree bit-for-bit no matter which threshold was applied.
  const Environment env = scenarios::multi_site(8, 3, 4);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const DesignSolverOptions options = oracle_options(seed);
    ExecutionOptions guarded;
    guarded.deterministic = true;
    guarded.intra_node_workers = 4;
    guarded.intra_min_fan = 1000;  // pool exists, fan never wide enough
    ExecutionOptions forced = guarded;
    forced.intra_min_fan = 1;
    ExecutionOptions autocal = guarded;
    autocal.intra_min_fan = 0;  // measured threshold (the default)

    const SolveResult a = solve_design(env, options, guarded);
    const SolveResult b = solve_design(env, options, forced);
    const SolveResult c = solve_design(env, options, autocal);
    ASSERT_TRUE(a.feasible) << "seed " << seed;
    ASSERT_TRUE(b.feasible) << "seed " << seed;
    ASSERT_TRUE(c.feasible) << "seed " << seed;
    EXPECT_FALSE(a.refit_fanned) << "seed " << seed;
    EXPECT_TRUE(b.refit_fanned) << "seed " << seed;
    EXPECT_GE(c.intra_min_fan_used, 1) << "seed " << seed;  // calibrated
    EXPECT_EQ(a.cost.total(), b.cost.total()) << "seed " << seed;
    EXPECT_EQ(a.cost.total(), c.cost.total()) << "seed " << seed;
    EXPECT_EQ(a.nodes_evaluated, b.nodes_evaluated) << "seed " << seed;
    EXPECT_EQ(a.nodes_evaluated, c.nodes_evaluated) << "seed " << seed;
  }
}

TEST(ParallelRefit, WideFanClearsExplicitThreshold) {
  const Environment env = scenarios::peer_sites(4);
  DesignSolverOptions options = oracle_options(5);
  options.breadth = 4;  // == the explicit threshold below
  options.max_refit_iterations = 2;
  ExecutionOptions par;
  par.deterministic = true;
  par.intra_node_workers = 4;
  par.intra_min_fan = 4;
  const SolveResult result = solve_design(env, options, par);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.refit_fanned);
  EXPECT_GT(result.refit_parallel_tasks, 0);
}

TEST(ParallelRefit, AutoCalibrationRecordsAThreshold) {
  // intra_min_fan = 0 (the default): the solve measures one at refit entry
  // and reports what it applied. Without a pool the fallback applies.
  const Environment env = scenarios::peer_sites(4);
  ExecutionOptions pooled;
  pooled.deterministic = true;
  pooled.intra_node_workers = 4;
  ASSERT_EQ(pooled.intra_min_fan, 0);
  const SolveResult with_pool = solve_design(env, oracle_options(9), pooled);
  ASSERT_TRUE(with_pool.feasible);
  EXPECT_GE(with_pool.intra_min_fan_used, 1);

  ExecutionOptions sequential;
  sequential.deterministic = true;
  const SolveResult seq = solve_design(env, oracle_options(9), sequential);
  ASSERT_TRUE(seq.feasible);
  EXPECT_GE(seq.intra_min_fan_used, 1);
  EXPECT_EQ(seq.cost.total(), with_pool.cost.total());
}

// ------------------------------------------------------------- cancellation

TEST(ParallelRefit, CancellationMidFanReturnsWithoutHanging) {
  const Environment env = scenarios::multi_site(12, 4, 6);
  DesignSolverOptions options;
  options.seed = 3;
  options.max_repetitions = 1;
  options.max_refit_iterations = 1000;  // far more work than we let it do
  std::atomic<bool> cancel{false};
  std::atomic<std::int64_t> progress{0};
  ExecutionOptions exec;
  exec.deterministic = true;  // wall clock can't end the solve early
  exec.intra_node_workers = 4;
  exec.cancel = &cancel;
  exec.progress = &progress;

  std::thread trigger([&cancel, &progress] {
    // Cancel once the solve is demonstrably inside the search.
    while (progress.load() < 25) std::this_thread::yield();
    cancel.store(true);
  });
  const SolveResult result = solve_design(env, options, exec);
  trigger.join();
  EXPECT_TRUE(result.cancelled);
  // Best-so-far comes back: by 25 nodes the greedy stage has produced a
  // design, and cancellation must not discard it.
  EXPECT_TRUE(result.feasible);
  ASSERT_TRUE(result.best.has_value());
}

// --------------------------------------------- nested fan under the engine

TEST(ParallelRefit, IntraParallelJobOnOneWorkerEngineDoesNotDeadlock) {
  // The engine lends its own pool to the job's refit fan; with one worker
  // the job itself occupies it, so every subtask must be stolen by the
  // job thread (help-while-wait). A deadlock here would hang CI — the
  // gtest discovery timeout is the backstop.
  DesignSolverOptions options;
  options.seed = 11;
  options.max_repetitions = 1;
  options.breadth = 2;
  options.depth = 2;
  options.max_refit_iterations = 2;
  options.time_budget_ms = 1e9;
  DesignJob job =
      DesignJob::make(scenarios::peer_sites(4), options, "intra-nested");
  job.exec.intra_node_workers = 4;
  job.exec.deterministic = true;
  std::vector<DesignJob> jobs;
  jobs.push_back(std::move(job));

  EngineOptions engine;
  engine.workers = 1;
  const BatchReport report = run_batch(std::move(jobs), engine);
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].status, JobStatus::Completed);
  EXPECT_TRUE(report.results[0].solve.feasible);
}

TEST(ParallelRefit, EngineResultMatchesDirectSolve) {
  // Same job through the engine (shared cache, borrowed pool) and directly:
  // the evaluation cache is result-transparent and the task tree identical,
  // so the totals must agree bit-for-bit.
  const Environment env = scenarios::peer_sites(4);
  const DesignSolverOptions options = oracle_options(13);

  ExecutionOptions exec;
  exec.deterministic = true;
  exec.intra_node_workers = 3;
  const SolveResult direct = solve_design(env, options, exec);

  DesignJob job = DesignJob::make(env, options, "direct-vs-engine");
  job.derive_seed = false;  // keep options.seed exactly
  job.exec.intra_node_workers = 3;
  job.exec.deterministic = true;
  std::vector<DesignJob> jobs;
  jobs.push_back(std::move(job));
  EngineOptions engine;
  engine.workers = 2;
  const BatchReport report = run_batch(std::move(jobs), engine);

  ASSERT_EQ(report.results.size(), 1u);
  const SolveResult& via_engine = report.results[0].solve;
  ASSERT_TRUE(direct.feasible);
  ASSERT_TRUE(via_engine.feasible);
  EXPECT_EQ(direct.cost.total(), via_engine.cost.total());
  EXPECT_EQ(direct.nodes_evaluated, via_engine.nodes_evaluated);
}

}  // namespace
}  // namespace depstor
