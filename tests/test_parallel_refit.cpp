// Intra-solve parallel refit search (DESIGN.md §9).
//
// The determinism contract under test: with `exec.deterministic` set, a
// solve explores a node set that depends only on (options, seed) — every
// search node draws from an RNG stream derived from its structural
// coordinates, and merges are slot-ordered — so any `intra_node_workers`
// value must return bit-identical results. Plus the machinery underneath:
// TaskGroup fan-out/steal semantics, cancellation mid-fan, and nested
// submission from a batch-engine job on a one-worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/scenarios.hpp"
#include "engine/engine.hpp"
#include "engine/worker_pool.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::solve_design;

// ---------------------------------------------------------------- TaskGroup

TEST(TaskGroup, NullPoolRunsInline) {
  std::atomic<int> ran{0};
  TaskGroup group(nullptr);
  for (int i = 0; i < 8; ++i) {
    group.run([&ran] { ++ran; });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(group.spawned(), 0);
  EXPECT_EQ(group.stolen(), 8);  // inline execution counts as stolen
}

TEST(TaskGroup, PoolRunsEveryTaskExactlyOnce) {
  WorkerPool pool(3);
  std::vector<std::atomic<int>> ran(64);
  TaskGroup group(&pool);
  for (auto& slot : ran) {
    group.run([&slot] { ++slot; });
  }
  group.wait();
  for (const auto& slot : ran) EXPECT_EQ(slot.load(), 1);
  EXPECT_EQ(group.spawned(), 64);
}

TEST(TaskGroup, WaiterStealsWhenPoolIsBusy) {
  // One worker, blocked on a gate: wait() must drain the remaining tasks
  // itself instead of deadlocking behind the busy worker.
  WorkerPool pool(1);
  std::atomic<bool> gate{false};
  std::atomic<int> ran{0};
  const bool accepted = pool.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  ASSERT_TRUE(accepted);
  TaskGroup group(&pool);
  for (int i = 0; i < 16; ++i) {
    group.run([&ran, &gate] {
      ++ran;
      if (ran.load() == 16) gate.store(true);  // last task frees the worker
    });
  }
  group.wait();
  gate.store(true);
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 16);
  // The only worker stays blocked until the 16th task flips the gate, so
  // every task was executed by the waiting thread.
  EXPECT_EQ(group.stolen(), 16);
}

TEST(TaskGroup, NestedGroupsOnOneWorkerPoolComplete) {
  WorkerPool pool(1);
  std::atomic<int> inner_ran{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 4; ++i) {
    outer.run([&pool, &inner_ran] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 4; ++j) {
        inner.run([&inner_ran] { ++inner_ran; });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(inner_ran.load(), 16);
}

// ---------------------------------------------- determinism oracle (§9)

DesignSolverOptions oracle_options(std::uint64_t seed) {
  DesignSolverOptions o;
  o.seed = seed;
  o.max_repetitions = 1;
  o.breadth = 2;
  o.depth = 3;
  o.max_refit_iterations = 3;
  return o;
}

void expect_parallel_matches_sequential(const Environment& env,
                                        std::uint64_t seed) {
  const DesignSolverOptions options = oracle_options(seed);
  ExecutionOptions seq;
  seq.deterministic = true;
  ExecutionOptions par = seq;
  par.intra_node_workers = 4;

  const SolveResult a = solve_design(env, options, seq);
  const SolveResult b = solve_design(env, options, par);
  ASSERT_EQ(a.feasible, b.feasible) << "seed " << seed;
  ASSERT_TRUE(a.feasible) << "seed " << seed;
  // Bit-identical totals, not approximate: the parallel solve runs the same
  // node tree with the same derived RNG streams.
  EXPECT_EQ(a.cost.total(), b.cost.total()) << "seed " << seed;
  EXPECT_EQ(a.cost.outlay, b.cost.outlay) << "seed " << seed;
  EXPECT_EQ(a.cost.outage_penalty, b.cost.outage_penalty) << "seed " << seed;
  EXPECT_EQ(a.cost.loss_penalty, b.cost.loss_penalty) << "seed " << seed;
  EXPECT_EQ(a.nodes_evaluated, b.nodes_evaluated) << "seed " << seed;
  EXPECT_EQ(a.refit_iterations, b.refit_iterations) << "seed " << seed;
}

TEST(ParallelRefit, BitIdenticalToSequentialPeerSites4) {
  const Environment env = scenarios::peer_sites(4);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    expect_parallel_matches_sequential(env, seed);
  }
}

TEST(ParallelRefit, BitIdenticalToSequentialPeerSites8) {
  const Environment env = scenarios::peer_sites(8);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    expect_parallel_matches_sequential(env, seed);
  }
}

TEST(ParallelRefit, BitIdenticalToSequentialMultiSite) {
  const Environment env = scenarios::multi_site(8, 3, 4);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    expect_parallel_matches_sequential(env, seed);
  }
}

TEST(ParallelRefit, ParallelTasksAreCountedWhenFanned) {
  const Environment env = scenarios::peer_sites(4);
  ExecutionOptions par;
  par.deterministic = true;
  par.intra_node_workers = 4;
  par.intra_min_fan = 1;  // force pooling even for the narrow oracle fan
  const SolveResult result = solve_design(env, oracle_options(7), par);
  ASSERT_TRUE(result.feasible);
  // With a real pool at least part of the fan runs as pool tasks.
  EXPECT_GT(result.refit_parallel_tasks + result.refit_steal_count, 0);
  EXPECT_TRUE(result.refit_fanned);
}

// ------------------------------------------------- fan-threshold guard

TEST(ParallelRefit, NarrowFanStaysInlineUnderThreshold) {
  // breadth 2 < intra_min_fan 4 (the default): the solve must not hand a
  // single task to the pool, and SolveResult records the inline path.
  const Environment env = scenarios::peer_sites(4);
  ExecutionOptions par;
  par.deterministic = true;
  par.intra_node_workers = 4;
  ASSERT_EQ(par.intra_min_fan, 4);
  const SolveResult result = solve_design(env, oracle_options(7), par);
  ASSERT_TRUE(result.feasible);
  EXPECT_FALSE(result.refit_fanned);
  EXPECT_EQ(result.refit_parallel_tasks, 0);
}

TEST(ParallelRefit, FanThresholdNeverChangesResults) {
  // Guarded (inline) and forced (pooled) fans walk the same structural node
  // tree with the same derived RNG streams — totals must agree bit-for-bit.
  const Environment env = scenarios::multi_site(8, 3, 4);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const DesignSolverOptions options = oracle_options(seed);
    ExecutionOptions guarded;
    guarded.deterministic = true;
    guarded.intra_node_workers = 4;  // pool exists, fan too narrow to use it
    ExecutionOptions forced = guarded;
    forced.intra_min_fan = 1;

    const SolveResult a = solve_design(env, options, guarded);
    const SolveResult b = solve_design(env, options, forced);
    ASSERT_TRUE(a.feasible) << "seed " << seed;
    ASSERT_TRUE(b.feasible) << "seed " << seed;
    EXPECT_FALSE(a.refit_fanned) << "seed " << seed;
    EXPECT_TRUE(b.refit_fanned) << "seed " << seed;
    EXPECT_EQ(a.cost.total(), b.cost.total()) << "seed " << seed;
    EXPECT_EQ(a.nodes_evaluated, b.nodes_evaluated) << "seed " << seed;
  }
}

TEST(ParallelRefit, WideFanClearsDefaultThreshold) {
  const Environment env = scenarios::peer_sites(4);
  DesignSolverOptions options = oracle_options(5);
  options.breadth = 4;  // == default intra_min_fan
  options.max_refit_iterations = 2;
  ExecutionOptions par;
  par.deterministic = true;
  par.intra_node_workers = 4;
  const SolveResult result = solve_design(env, options, par);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.refit_fanned);
  EXPECT_GT(result.refit_parallel_tasks, 0);
}

// ------------------------------------------------------------- cancellation

TEST(ParallelRefit, CancellationMidFanReturnsWithoutHanging) {
  const Environment env = scenarios::multi_site(12, 4, 6);
  DesignSolverOptions options;
  options.seed = 3;
  options.max_repetitions = 1;
  options.max_refit_iterations = 1000;  // far more work than we let it do
  std::atomic<bool> cancel{false};
  std::atomic<std::int64_t> progress{0};
  ExecutionOptions exec;
  exec.deterministic = true;  // wall clock can't end the solve early
  exec.intra_node_workers = 4;
  exec.cancel = &cancel;
  exec.progress = &progress;

  std::thread trigger([&cancel, &progress] {
    // Cancel once the solve is demonstrably inside the search.
    while (progress.load() < 25) std::this_thread::yield();
    cancel.store(true);
  });
  const SolveResult result = solve_design(env, options, exec);
  trigger.join();
  EXPECT_TRUE(result.cancelled);
  // Best-so-far comes back: by 25 nodes the greedy stage has produced a
  // design, and cancellation must not discard it.
  EXPECT_TRUE(result.feasible);
  ASSERT_TRUE(result.best.has_value());
}

// --------------------------------------------- nested fan under the engine

TEST(ParallelRefit, IntraParallelJobOnOneWorkerEngineDoesNotDeadlock) {
  // The engine lends its own pool to the job's refit fan; with one worker
  // the job itself occupies it, so every subtask must be stolen by the
  // job thread (help-while-wait). A deadlock here would hang CI — the
  // gtest discovery timeout is the backstop.
  DesignSolverOptions options;
  options.seed = 11;
  options.max_repetitions = 1;
  options.breadth = 2;
  options.depth = 2;
  options.max_refit_iterations = 2;
  options.time_budget_ms = 1e9;
  DesignJob job =
      DesignJob::make(scenarios::peer_sites(4), options, "intra-nested");
  job.exec.intra_node_workers = 4;
  job.exec.deterministic = true;
  std::vector<DesignJob> jobs;
  jobs.push_back(std::move(job));

  EngineOptions engine;
  engine.workers = 1;
  const BatchReport report = run_batch(std::move(jobs), engine);
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].status, JobStatus::Completed);
  EXPECT_TRUE(report.results[0].solve.feasible);
}

TEST(ParallelRefit, EngineResultMatchesDirectSolve) {
  // Same job through the engine (shared cache, borrowed pool) and directly:
  // the evaluation cache is result-transparent and the task tree identical,
  // so the totals must agree bit-for-bit.
  const Environment env = scenarios::peer_sites(4);
  const DesignSolverOptions options = oracle_options(13);

  ExecutionOptions exec;
  exec.deterministic = true;
  exec.intra_node_workers = 3;
  const SolveResult direct = solve_design(env, options, exec);

  DesignJob job = DesignJob::make(env, options, "direct-vs-engine");
  job.derive_seed = false;  // keep options.seed exactly
  job.exec.intra_node_workers = 3;
  job.exec.deterministic = true;
  std::vector<DesignJob> jobs;
  jobs.push_back(std::move(job));
  EngineOptions engine;
  engine.workers = 2;
  const BatchReport report = run_batch(std::move(jobs), engine);

  ASSERT_EQ(report.results.size(), 1u);
  const SolveResult& via_engine = report.results[0].solve;
  ASSERT_TRUE(direct.feasible);
  ASSERT_TRUE(via_engine.feasible);
  EXPECT_EQ(direct.cost.total(), via_engine.cost.total());
  EXPECT_EQ(direct.nodes_evaluated, via_engine.nodes_evaluated);
}

}  // namespace
}  // namespace depstor
