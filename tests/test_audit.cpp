// Design-invariant auditor: solver outputs on the example environments must
// audit clean; hand-corrupted designs must be rejected with the exact rule.
#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/audit.hpp"
#include "core/env_loader.hpp"
#include "solver/design_solver.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace depstor::analysis {
namespace {

DesignSolverOptions fast_options() {
  DesignSolverOptions opts;
  opts.time_budget_ms = 1500.0;
  opts.max_repetitions = 1;
  opts.seed = 7;
  return opts;
}

SolveResult solve(const Environment& env) {
  SolveResult result = testing::solve_design(env, fast_options());
  EXPECT_TRUE(result.feasible);
  return result;
}

TEST(Audit, AcceptsSolverOutputOnPeerSites) {
  const Environment env = testing::peer_env(4);
  const SolveResult result = solve(env);
  const auto rep = audit_candidate(*result.best, &result.cost);
  EXPECT_FALSE(rep.has_errors()) << rep.render_text();
}

TEST(Audit, AcceptsSolverOutputOnExampleEnvironments) {
  const std::filesystem::path dir =
      std::filesystem::path(DEPSTOR_SOURCE_DIR) / "examples" / "environments";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int audited = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".ini") continue;
    const Environment env = load_environment(entry.path().string());
    const SolveResult result = solve(env);
    const auto rep = audit_candidate(*result.best, &result.cost);
    EXPECT_FALSE(rep.has_errors())
        << entry.path() << ":\n"
        << rep.render_text();
    ++audited;
  }
  EXPECT_GE(audited, 3);
}

TEST(Audit, AcceptsPartialCandidateWithoutCompletenessRule) {
  const Environment env = testing::peer_env(2);
  Candidate cand(&env);
  cand.place_app(0, testing::full_choice(testing::sync_f_backup()));
  AuditOptions opts;
  opts.require_complete = false;
  const auto rep =
      audit_design(env, cand.assignments(), cand.pool(), nullptr, opts);
  EXPECT_FALSE(rep.has_errors()) << rep.render_text();
}

// --- hand-corrupted designs; each must fire its exact rule id ---

struct Corruptible {
  Environment env;
  std::vector<AppAssignment> assignments;
  CostBreakdown cost;
  const Candidate* candidate = nullptr;
};

class AuditCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = testing::peer_env(4);
    result_ = solve(env_);
    assignments_ = result_->best->assignments();
  }

  DiagnosticReport audit(const CostBreakdown* cost = nullptr) const {
    return audit_design(env_, assignments_, result_->best->pool(), cost);
  }

  /// Index of an assignment using a mirror (the solver always mirrors at
  /// least the gold apps in the peer-sites environment).
  std::size_t mirrored_index() const {
    for (std::size_t i = 0; i < assignments_.size(); ++i) {
      if (assignments_[i].has_mirror()) return i;
    }
    ADD_FAILURE() << "no mirrored assignment in the solved design";
    return 0;
  }

  Environment env_;
  std::optional<SolveResult> result_;
  std::vector<AppAssignment> assignments_;
};

TEST_F(AuditCorruption, UnassignedApplication) {
  assignments_[0].assigned = false;
  const auto rep = audit();
  EXPECT_TRUE(rep.has_rule(audit_rules::kAppUnassigned)) << rep.render_text();
}

TEST_F(AuditCorruption, DroppedAssignment) {
  assignments_.pop_back();
  const auto rep = audit();
  EXPECT_TRUE(rep.has_rule(audit_rules::kAppUnassigned)) << rep.render_text();
}

TEST_F(AuditCorruption, MirrorOnPrimarySite) {
  auto& a = assignments_[mirrored_index()];
  a.secondary_site = a.primary_site;
  const auto rep = audit();
  EXPECT_TRUE(rep.has_rule(audit_rules::kMirrorSiteCollision))
      << rep.render_text();
}

TEST_F(AuditCorruption, DanglingPrimaryArray) {
  assignments_[0].primary_array = 9999;
  const auto rep = audit();
  EXPECT_TRUE(rep.has_rule(audit_rules::kDanglingDeviceRef))
      << rep.render_text();
}

TEST_F(AuditCorruption, DeviceOfWrongKind) {
  // Point the tape-library field at the primary array: right id range,
  // wrong device kind.
  auto& a = assignments_[mirrored_index()];
  if (!a.has_backup()) {
    for (auto& other : assignments_) {
      if (other.has_backup()) {
        other.tape_library = a.primary_array;
        break;
      }
    }
  } else {
    a.tape_library = a.primary_array;
  }
  const auto rep = audit();
  EXPECT_TRUE(rep.has_rule(audit_rules::kDanglingDeviceRef))
      << rep.render_text();
}

TEST_F(AuditCorruption, MisreportedCost) {
  CostBreakdown lie = result_->cost;
  lie.outlay *= 1.25;
  const auto rep = audit(&lie);
  EXPECT_TRUE(rep.has_rule(audit_rules::kCostMismatch)) << rep.render_text();
}

TEST_F(AuditCorruption, TruthfulCostPasses) {
  const auto rep = audit(&result_->cost);
  EXPECT_FALSE(rep.has_errors()) << rep.render_text();
}

TEST(Audit, UnlinkedMirrorSitesRejected) {
  // Four-site environment where not every pair is connected: move a mirror
  // to a reachable-but-unlinked site.
  const std::filesystem::path path = std::filesystem::path(DEPSTOR_SOURCE_DIR) /
                                     "examples" / "environments" /
                                     "coastal.ini";
  const Environment env = load_environment(path.string());
  const SolveResult result = solve(env);
  auto assignments = result.best->assignments();
  bool corrupted = false;
  for (auto& a : assignments) {
    if (!a.has_mirror()) continue;
    for (int s = 0; s < env.topology.site_count(); ++s) {
      if (s != a.primary_site && !env.topology.connected(a.primary_site, s)) {
        a.secondary_site = s;
        corrupted = true;
        break;
      }
    }
    if (corrupted) break;
  }
  ASSERT_TRUE(corrupted) << "no mirrored app / unlinked site pair found";
  const auto rep = audit_design(env, assignments, result.best->pool());
  EXPECT_TRUE(rep.has_rule(audit_rules::kMirrorSitesUnlinked))
      << rep.render_text();
}

// --- the enforcement hook used by the solvers/engine ---

TEST(Audit, EnforceThrowsInternalErrorOnBadCost) {
  const Environment env = testing::peer_env(2);
  const SolveResult result = solve(env);
  CostBreakdown lie = result.cost;
  lie.outlay *= 2.0;
  EXPECT_THROW(enforce_audit(*result.best, &lie, {}, "test"), InternalError);
}

TEST(Audit, EnforcePassesOnTruthfulResult) {
  const Environment env = testing::peer_env(2);
  const SolveResult result = solve(env);
  EXPECT_NO_THROW(enforce_audit(*result.best, &result.cost, {}, "test"));
}

}  // namespace
}  // namespace depstor::analysis
