#include <gtest/gtest.h>

#include "resources/site.hpp"
#include "util/check.hpp"

namespace depstor {
namespace {

SiteSpec proto() {
  SiteSpec s;
  s.name = "proto";
  return s;
}

TEST(Topology, FullyConnectedFactory) {
  const auto t = Topology::fully_connected(4, proto(), 6);
  EXPECT_EQ(t.site_count(), 4);
  EXPECT_EQ(t.pair_limits.size(), 6u);  // 4 choose 2
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b) continue;
      EXPECT_TRUE(t.connected(a, b));
      EXPECT_EQ(t.max_links(a, b), 6);
    }
  }
}

TEST(Topology, SitesAreNamedAndDense) {
  const auto t = Topology::fully_connected(3, proto(), 2);
  EXPECT_EQ(t.site(0).name, "P1");
  EXPECT_EQ(t.site(2).name, "P3");
  EXPECT_EQ(t.site(1).id, 1);
}

TEST(Topology, ConnectivityIsSymmetric) {
  Topology t;
  t.sites = {proto(), proto(), proto()};
  for (int i = 0; i < 3; ++i) t.sites[static_cast<std::size_t>(i)].id = i;
  t.pair_limits = {{0, 1, 4}};
  EXPECT_TRUE(t.connected(0, 1));
  EXPECT_TRUE(t.connected(1, 0));
  EXPECT_FALSE(t.connected(0, 2));
  EXPECT_EQ(t.max_links(1, 0), 4);
  EXPECT_EQ(t.max_links(0, 2), 0);
}

TEST(Topology, Neighbors) {
  Topology t;
  t.sites = {proto(), proto(), proto()};
  for (int i = 0; i < 3; ++i) t.sites[static_cast<std::size_t>(i)].id = i;
  t.pair_limits = {{0, 1, 1}, {0, 2, 1}};
  EXPECT_EQ(t.neighbors(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(t.neighbors(1), (std::vector<int>{0}));
}

TEST(Topology, SingleSiteHasNoNeighbors) {
  const auto t = Topology::fully_connected(1, proto(), 5);
  EXPECT_TRUE(t.neighbors(0).empty());
  EXPECT_TRUE(t.pair_limits.empty());
}

TEST(Topology, ValidateRejectsBadIds) {
  Topology t;
  t.sites = {proto()};
  t.sites[0].id = 7;  // not dense
  EXPECT_THROW(t.validate(), InvalidArgument);
}

TEST(Topology, ValidateRejectsSelfLinks) {
  Topology t;
  t.sites = {proto(), proto()};
  t.sites[0].id = 0;
  t.sites[1].id = 1;
  t.pair_limits = {{1, 1, 3}};
  EXPECT_THROW(t.validate(), InvalidArgument);
}

TEST(Topology, ValidateRejectsOutOfRangePairs) {
  Topology t;
  t.sites = {proto(), proto()};
  t.sites[0].id = 0;
  t.sites[1].id = 1;
  t.pair_limits = {{0, 5, 3}};
  EXPECT_THROW(t.validate(), InvalidArgument);
}

TEST(Topology, SiteAccessorBoundsChecked) {
  const auto t = Topology::fully_connected(2, proto(), 1);
  EXPECT_THROW(t.site(-1), InvalidArgument);
  EXPECT_THROW(t.site(2), InvalidArgument);
}

TEST(SiteSpec, ValidateRejectsNegatives) {
  SiteSpec s = proto();
  s.max_disk_arrays = -1;
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = proto();
  s.fixed_cost = -5.0;
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = proto();
  s.name.clear();
  EXPECT_THROW(s.validate(), InvalidArgument);
}

}  // namespace
}  // namespace depstor
