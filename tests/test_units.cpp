#include "util/units.hpp"

#include <gtest/gtest.h>

namespace depstor::units {
namespace {

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(minutes(30.0), 0.5);
  EXPECT_DOUBLE_EQ(hours(2.0), 2.0);
  EXPECT_DOUBLE_EQ(days(2.0), 48.0);
  EXPECT_DOUBLE_EQ(years(1.0), 8760.0);
  EXPECT_DOUBLE_EQ(to_minutes(0.5), 30.0);
  EXPECT_DOUBLE_EQ(to_days(48.0), 2.0);
}

TEST(Units, RoundTrips) {
  EXPECT_DOUBLE_EQ(to_minutes(minutes(17.0)), 17.0);
  EXPECT_DOUBLE_EQ(to_days(days(3.5)), 3.5);
}

TEST(Units, DataAndMoney) {
  EXPECT_DOUBLE_EQ(terabytes(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(kilodollars(5.0), 5000.0);
  EXPECT_DOUBLE_EQ(megadollars(5.0), 5.0e6);
}

TEST(Units, TransferHours) {
  // 3600 GB at 1000 MB/s → 3,600,000 MB / 1000 MB/s = 3600 s = 1 h.
  EXPECT_DOUBLE_EQ(transfer_hours(3600.0, 1000.0), 1.0);
  // 143 GB at 25 MB/s ≈ 1.589 h.
  EXPECT_NEAR(transfer_hours(143.0, 25.0), 1.5889, 1e-3);
}

TEST(Units, AccumulatedGb) {
  // 1 MB/s for 1 hour = 3600 MB = 3.6 GB.
  EXPECT_DOUBLE_EQ(accumulated_gb(1.0, 1.0), 3.6);
}

TEST(Units, TransferAndAccumulateAreInverse) {
  // Accumulate at rate r for t hours, transfer back at rate r → t hours.
  const double rate = 7.5;
  const double t = 3.25;
  EXPECT_NEAR(transfer_hours(accumulated_gb(rate, t), rate), t, 1e-12);
}

TEST(Units, FailureRates) {
  EXPECT_DOUBLE_EQ(once_in_years(5.0), 0.2);
  EXPECT_DOUBLE_EQ(times_per_year(2.0), 2.0);
}

}  // namespace
}  // namespace depstor::units
