#include <gtest/gtest.h>

#include "core/design_tool.hpp"
#include "core/sampler.hpp"
#include "core/scenarios.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

// --- environment validation ---

TEST(Environment, ValidatesDenseAppIds) {
  Environment env = scenarios::peer_sites(2);
  env.apps[1].id = 5;
  EXPECT_THROW(env.validate(), InvalidArgument);
}

TEST(Environment, ValidatesCatalogKinds) {
  Environment env = scenarios::peer_sites(2);
  env.array_types[0] = resources::tape_library_high();  // wrong kind
  EXPECT_THROW(env.validate(), InvalidArgument);
}

TEST(Environment, RejectsEmptyCatalogs) {
  Environment env = scenarios::peer_sites(2);
  env.tape_types.clear();
  EXPECT_THROW(env.validate(), InvalidArgument);
}

TEST(Environment, AppCategoryUsesThresholds) {
  Environment env = scenarios::peer_sites(4);
  EXPECT_EQ(env.app_category(0), AppCategory::Gold);    // B1
  EXPECT_EQ(env.app_category(1), AppCategory::Silver);  // C1
  EXPECT_EQ(env.app_category(3), AppCategory::Bronze);  // S1
}

TEST(PolicyRanges, RejectsBackupFasterThanSnapshot) {
  PolicyRanges p;
  p.snapshot_intervals_hours = {24.0};
  p.backup_intervals_hours = {12.0};
  EXPECT_THROW(p.validate(), InvalidArgument);
}

// --- scenario factories ---

TEST(Scenarios, PeerSitesShape) {
  const Environment env = scenarios::peer_sites(8);
  EXPECT_EQ(env.apps.size(), 8u);
  EXPECT_EQ(env.topology.site_count(), 2);
  EXPECT_EQ(env.topology.max_links(0, 1), 32);
  EXPECT_EQ(env.topology.site(0).max_disk_arrays, 2);
  EXPECT_EQ(env.topology.site(0).max_tape_libraries, 1);
  EXPECT_EQ(env.topology.site(0).max_compute_slots, 8);
  EXPECT_EQ(env.array_types.size(), 3u);
}

TEST(Scenarios, MultiSiteShape) {
  const Environment env = scenarios::multi_site(16, 4, 6);
  EXPECT_EQ(env.apps.size(), 16u);
  EXPECT_EQ(env.topology.site_count(), 4);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      EXPECT_EQ(env.topology.max_links(a, b), 6);
    }
  }
}

TEST(Scenarios, BaselineFailureRates) {
  const Environment env = scenarios::peer_sites(1);
  EXPECT_NEAR(env.failures.data_object_rate, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(env.failures.disk_array_rate, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(env.failures.site_disaster_rate, 1.0 / 5.0, 1e-12);
}

TEST(FailureModel, SensitivityBaseline) {
  const auto m = FailureModel::sensitivity_baseline();
  EXPECT_DOUBLE_EQ(m.data_object_rate, 2.0);
  EXPECT_DOUBLE_EQ(m.disk_array_rate, 0.2);
  EXPECT_DOUBLE_EQ(m.site_disaster_rate, 0.05);
}

// --- design tool facade ---

TEST(DesignTool, DesignAndDescribe) {
  DesignTool tool(scenarios::peer_sites(4));
  DesignSolverOptions o;
  o.time_budget_ms = 300.0;
  o.seed = 11;
  const auto result = tool.design(o);
  ASSERT_TRUE(result.feasible);
  const std::string table = DesignTool::describe(tool.env(), *result.best);
  EXPECT_NE(table.find("B1"), std::string::npos);
  EXPECT_NE(table.find("mirror"), std::string::npos);
  const std::string cost = DesignTool::describe_cost(tool.env(), result.cost);
  EXPECT_NE(cost.find("TOTAL"), std::string::npos);
}

TEST(DesignTool, DescribeShowsUnassignedRows) {
  Environment env = scenarios::peer_sites(2);
  Candidate cand(&env);
  cand.place_app(0, testing::full_choice(testing::backup_only()));
  const std::string table = DesignTool::describe(env, cand);
  EXPECT_NE(table.find("(unassigned)"), std::string::npos);
}

TEST(DesignTool, EvaluateUnderReweightsFailures) {
  DesignTool tool(scenarios::peer_sites(4));
  DesignSolverOptions o;
  o.time_budget_ms = 300.0;
  o.seed = 12;
  const auto result = tool.design(o);
  ASSERT_TRUE(result.feasible);
  FailureModel calm;
  calm.data_object_rate = 0.0;
  calm.disk_array_rate = 0.0;
  calm.site_disaster_rate = 0.0;
  const auto calm_cost = tool.evaluate_under(*result.best, calm);
  EXPECT_DOUBLE_EQ(calm_cost.penalty(), 0.0);
  EXPECT_NEAR(calm_cost.outlay, result.cost.outlay, 1e-6);
}

// --- sampler ---

TEST(Sampler, ProducesRequestedFeasibleCount) {
  Environment env = scenarios::peer_sites(4);
  SolutionSpaceSampler sampler(&env);
  const auto stats = sampler.sample(50, /*seed=*/21);
  EXPECT_EQ(stats.feasible, 50);
  EXPECT_EQ(stats.samples.size(), 50u);
  EXPECT_GE(stats.attempted, stats.feasible);
  EXPECT_GT(stats.costs.min(), 0.0);
}

TEST(Sampler, DeterministicUnderSeed) {
  Environment env = scenarios::peer_sites(4);
  SolutionSpaceSampler sampler(&env);
  const auto a = sampler.sample(20, 33);
  const auto b = sampler.sample(20, 33);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i], b.samples[i]);
  }
}

TEST(Sampler, PercentileOfBoundaries) {
  SampleStats stats;
  stats.samples = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(stats.percentile_of(5.0), 0.0);
  EXPECT_DOUBLE_EQ(stats.percentile_of(25.0), 0.5);
  EXPECT_DOUBLE_EQ(stats.percentile_of(100.0), 1.0);
  EXPECT_DOUBLE_EQ(SampleStats{}.percentile_of(5.0), 0.0);
}

TEST(Sampler, CostsSpreadWidely) {
  // §4.3.1: solution costs vary by more than an order of magnitude.
  Environment env = scenarios::peer_sites(8);
  SolutionSpaceSampler sampler(&env);
  const auto stats = sampler.sample(300, 55);
  EXPECT_GT(stats.costs.max() / stats.costs.min(), 10.0);
}

TEST(Sampler, RejectsBadArguments) {
  Environment env = scenarios::peer_sites(2);
  SolutionSpaceSampler sampler(&env);
  EXPECT_THROW(sampler.sample(0, 1), InvalidArgument);
  EXPECT_THROW(sampler.sample(10, 1, false, 0), InvalidArgument);
}

}  // namespace
}  // namespace depstor
