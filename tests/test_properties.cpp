// Cross-cutting property tests: invariants that must hold across seeds,
// scales and techniques, swept with parameterized suites.
#include <gtest/gtest.h>

#include "core/design_tool.hpp"
#include "core/sampler.hpp"
#include "model/recovery_sim.hpp"
#include "solver/config_solver.hpp"
#include "solver/design_solver.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::full_choice;
using testing::peer_env;

// --- every solver output is structurally sound, across seeds ---

class SolverSoundness : public ::testing::TestWithParam<int> {};

TEST_P(SolverSoundness, DesignSolverOutputsAreAlwaysFeasible) {
  Environment env = peer_env(8);
  DesignSolverOptions o;
  o.time_budget_ms = 250.0;
  o.seed = static_cast<std::uint64_t>(GetParam());
  const auto result = testing::solve_design(env, o);
  ASSERT_TRUE(result.feasible);
  EXPECT_NO_THROW(result.best->check_feasible());
  EXPECT_EQ(result.best->assigned_count(), 8);
  // Reported cost must match an independent re-evaluation of the candidate.
  EXPECT_NEAR(result.cost.total(), result.best->evaluate().total(),
              result.cost.total() * 1e-9);
}

TEST_P(SolverSoundness, BaselineOutputsAreAlwaysFeasible) {
  Environment env = peer_env(8);
  BaselineOptions o;
  o.time_budget_ms = 250.0;
  o.seed = static_cast<std::uint64_t>(GetParam());
  const auto human = HumanHeuristic(&env, o).solve();
  if (human.feasible) {
    EXPECT_NO_THROW(human.best->check_feasible());
    EXPECT_EQ(human.best->assigned_count(), 8);
  }
  const auto random = RandomHeuristic(&env, o).solve();
  if (random.feasible) {
    EXPECT_NO_THROW(random.best->check_feasible());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSoundness, ::testing::Range(1, 11));

// --- technique dominance: more protection never increases penalties ---

class TechniqueDominance
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(TechniqueDominance, BackupNeverWorsensPenalty) {
  // Same mirror mode and recovery style, with vs without backup: the
  // with-backup variant must have penalties no larger (it strictly adds
  // surviving copies).
  const auto [app_index, is_sync] = GetParam();
  const auto mirror = is_sync ? MirrorMode::Sync : MirrorMode::Async;

  Environment env_with = peer_env(4);
  Environment env_without = peer_env(4);
  const auto with_backup =
      protection::mirror_technique(mirror, RecoveryMode::Failover, true);
  const auto without_backup =
      protection::mirror_technique(mirror, RecoveryMode::Failover, false);

  Candidate a(&env_with);
  a.place_app(app_index, full_choice(with_backup));
  Candidate b(&env_without);
  b.place_app(app_index, full_choice(without_backup));

  const auto pa = a.evaluate();
  const auto pb = b.evaluate();
  EXPECT_LE(pa.penalty(),
            pb.penalty() + 1e-6)
      << "backup increased penalties for app " << app_index;
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndModes, TechniqueDominance,
    ::testing::Combine(::testing::Values(0, 1, 2, 3), ::testing::Bool()));

// --- failover dominates reconstruct on outage, any app, any mirror mode ---

class FailoverDominance
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(FailoverDominance, FailoverOutagePenaltyNeverLarger) {
  const auto [app_index, is_sync] = GetParam();
  const auto mirror = is_sync ? MirrorMode::Sync : MirrorMode::Async;
  Environment env_f = peer_env(4);
  Environment env_r = peer_env(4);
  Candidate f(&env_f);
  f.place_app(app_index,
              full_choice(protection::mirror_technique(
                  mirror, RecoveryMode::Failover, true)));
  Candidate r(&env_r);
  r.place_app(app_index,
              full_choice(protection::mirror_technique(
                  mirror, RecoveryMode::Reconstruct, true)));
  EXPECT_LE(f.evaluate().outage_penalty, r.evaluate().outage_penalty + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndModes, FailoverDominance,
    ::testing::Combine(::testing::Values(0, 1, 2, 3), ::testing::Bool()));

// --- contention monotonicity: adding co-hosted apps never speeds anyone up

TEST(ContentionMonotonicity, MoreCohostedAppsNeverShortenOutage) {
  double previous_worst = 0.0;
  for (int n : {1, 2, 4}) {
    Environment env = peer_env(4);
    Candidate cand(&env);
    for (int i = 0; i < n; ++i) {
      cand.place_app(i, full_choice(testing::sync_r_backup()));
    }
    ScenarioSpec s;
    s.scope = FailureScope::DiskArray;
    s.failed_array = cand.assignment(0).primary_array;
    double worst = 0.0;
    for (const auto& r : simulate_recovery(s, env.apps, cand.assignments(),
                                           cand.pool(), env.params)) {
      worst = std::max(worst, r.outage_hours);
    }
    EXPECT_GE(worst, previous_worst);
    previous_worst = worst;
  }
}

// --- sampler cost floor: no sampled design beats the zero lower bound and
// --- every sampled cost includes at least the outlay of one site ---

class SamplerFloor : public ::testing::TestWithParam<int> {};

TEST_P(SamplerFloor, SampledCostsHaveSaneFloor) {
  Environment env = peer_env(4);
  SolutionSpaceSampler sampler(&env);
  const auto stats =
      sampler.sample(40, static_cast<std::uint64_t>(GetParam()));
  // Any feasible design uses at least one site and one array: annualized
  // site cost alone is $1M/3.
  EXPECT_GE(stats.costs.min(), 1e6 / 3.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerFloor, ::testing::Range(1, 6));

// --- penalties decompose: total == outlay + Σ per-app penalties ---

class CostDecomposition : public ::testing::TestWithParam<int> {};

TEST_P(CostDecomposition, HoldsForRandomDesigns) {
  Environment env = peer_env(6);
  SolutionSpaceSampler sampler(&env);
  // Use the design tool quickly to get a feasible candidate; then check the
  // decomposition identity on it.
  DesignSolverOptions o;
  o.time_budget_ms = 150.0;
  o.seed = static_cast<std::uint64_t>(GetParam());
  const auto result = testing::solve_design(env, o);
  ASSERT_TRUE(result.feasible);
  const auto cost = result.best->evaluate();
  double per_app = 0.0;
  for (const auto& d : cost.per_app) {
    per_app += d.outage_penalty + d.loss_penalty;
  }
  EXPECT_NEAR(cost.total(), cost.outlay + per_app,
              1e-9 * std::max(1.0, cost.total()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostDecomposition, ::testing::Range(1, 6));

// --- interval monotonicity: longer snapshot intervals never reduce loss ---

class SnapshotIntervalMonotone : public ::testing::TestWithParam<double> {};

TEST_P(SnapshotIntervalMonotone, LossGrowsWithInterval) {
  Environment env = testing::tiny_env(workload::consumer_banking());
  Candidate cand = testing::candidate_with(env, testing::backup_only());
  BackupChainConfig cfg = cand.assignment(0).backup;
  cfg.snapshot_interval_hours = 4.0;
  cand.set_backup_config(0, cfg);
  const double loss_short = cand.evaluate().loss_penalty;

  cfg.snapshot_interval_hours = GetParam();
  cand.set_backup_config(0, cfg);
  const double loss_long = cand.evaluate().loss_penalty;
  EXPECT_GE(loss_long, loss_short - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Intervals, SnapshotIntervalMonotone,
                         ::testing::Values(4.0, 8.0, 12.0, 24.0));

// --- environment scaling sanity: more apps never cost less ---

TEST(ScalingSanity, CostGrowsWithAppCount) {
  double previous = 0.0;
  for (int apps : {4, 8}) {
    DesignTool tool(scenarios::peer_sites(apps));
    DesignSolverOptions o;
    o.time_budget_ms = 500.0;
    o.seed = 3;
    const auto result = tool.design(o);
    ASSERT_TRUE(result.feasible);
    EXPECT_GT(result.cost.total(), previous);
    previous = result.cost.total();
  }
}

// --- perturbation robustness: the tool stays feasible under jitter ---

class JitterRobustness : public ::testing::TestWithParam<int> {};

TEST_P(JitterRobustness, SolvesPerturbedWorkloads) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Environment env = peer_env(8);
  env.apps = workload::perturbed_set(8, 0.25, rng);
  env.validate();
  DesignSolverOptions o;
  o.time_budget_ms = 400.0;
  o.seed = static_cast<std::uint64_t>(GetParam());
  const auto result = testing::solve_design(env, o);
  ASSERT_TRUE(result.feasible);
  EXPECT_NO_THROW(result.best->check_feasible());
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitterRobustness, ::testing::Range(1, 6));

}  // namespace
}  // namespace depstor
