#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/design_tool.hpp"
#include "engine/worker_pool.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace depstor {
namespace {

using testing::peer_env;

/// Fixed-work options: one greedy repetition, unbounded wall clock, so a
/// solve is bit-identical run to run and across worker counts.
EngineOptions engine_with_workers(int workers) {
  EngineOptions options;
  options.workers = workers;
  return options;
}

DesignSolverOptions fixed_work_options(std::uint64_t seed = 11) {
  DesignSolverOptions o;
  o.time_budget_ms = 1e9;
  o.max_repetitions = 1;
  o.max_refit_iterations = 1;
  o.seed = seed;
  return o;
}

std::vector<DesignJob> sweep_jobs(int count, const DesignSolverOptions& o) {
  std::vector<DesignJob> jobs;
  for (int i = 0; i < count; ++i) {
    Environment env = peer_env(4);
    env.failures.data_object_rate = 0.5 * (i + 1);
    jobs.push_back(
        DesignJob::make(std::move(env), o, "job-" + std::to_string(i)));
  }
  return jobs;
}

// Pin the worker-count contract: explicit counts pass through untouched,
// auto (0) resolves to hardware concurrency but never below one thread —
// std::thread::hardware_concurrency() is allowed to return 0 ("unknown"),
// and a pool of zero threads would deadlock every submit.
TEST(WorkerPool, ResolveWorkerCountPassesExplicitCountsThrough) {
  EXPECT_EQ(resolve_worker_count(1), 1);
  EXPECT_EQ(resolve_worker_count(3), 3);
  EXPECT_EQ(resolve_worker_count(64), 64);
}

TEST(WorkerPool, ResolveWorkerCountAutoClampsToAtLeastOne) {
  const int resolved = resolve_worker_count(0);
  EXPECT_GE(resolved, 1);
  EXPECT_EQ(resolved,
            std::max(1, static_cast<int>(
                            std::thread::hardware_concurrency())));
}

TEST(WorkerPool, ResolveWorkerCountRejectsNegative) {
  EXPECT_THROW(resolve_worker_count(-1), InvalidArgument);
}

TEST(WorkerPool, AutoPoolRunsSubmittedWork) {
  WorkerPool pool(0);  // auto: must come up with >= 1 live thread
  EXPECT_GE(pool.worker_count(), 1);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.submit([&ran] { ran.fetch_add(1); }));
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(BatchEngine, RunsABatchToCompletion) {
  EngineOptions options;
  options.workers = 2;
  const BatchReport report = run_batch(sweep_jobs(4, fixed_work_options()),
                                       options);
  ASSERT_EQ(report.results.size(), 4u);
  for (const auto& r : report.results) {
    EXPECT_EQ(r.status, JobStatus::Completed) << r.name << ": " << r.error;
    EXPECT_TRUE(r.solve.feasible);
    EXPECT_NO_THROW(r.solve.best->check_feasible());
    EXPECT_GT(r.solve.nodes_evaluated, 0);
    EXPECT_GE(r.queue_ms, 0.0);
    EXPECT_GT(r.run_ms, 0.0);
  }
  // Results come back in submission order regardless of completion order.
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    EXPECT_EQ(report.results[i].id, static_cast<int>(i));
    EXPECT_EQ(report.results[i].name, "job-" + std::to_string(i));
  }
}

TEST(BatchEngine, DerivesSeedsFromSubmissionIndex) {
  EngineOptions options;
  options.workers = 2;
  options.seed = 100;
  const BatchReport report = run_batch(sweep_jobs(3, fixed_work_options()),
                                       options);
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    EXPECT_EQ(report.results[i].seed, 100u + i);
  }
}

TEST(BatchEngine, HonorsExplicitSeedWhenDerivationIsOff) {
  auto jobs = sweep_jobs(2, fixed_work_options(77));
  for (auto& job : jobs) job.derive_seed = false;
  const BatchReport report = run_batch(std::move(jobs), {});
  for (const auto& r : report.results) EXPECT_EQ(r.seed, 77u);
}

// The satellite determinism regression: the same batch through 1, 2, and 8
// workers must produce bit-identical best costs and identical chosen designs.
TEST(BatchEngine, DeterministicAcrossWorkerCounts) {
  std::vector<double> base_costs;
  std::vector<std::string> base_designs;
  for (int workers : {1, 2, 8}) {
    EngineOptions options;
    options.workers = workers;
    options.seed = 5;
    const BatchReport report = run_batch(sweep_jobs(4, fixed_work_options()),
                                         options);
    std::vector<double> costs;
    std::vector<std::string> designs;
    for (const auto& r : report.results) {
      ASSERT_EQ(r.status, JobStatus::Completed) << r.error;
      ASSERT_TRUE(r.solve.feasible);
      costs.push_back(r.solve.cost.total());
      designs.push_back(DesignTool::describe(*r.env, *r.solve.best));
    }
    if (workers == 1) {
      base_costs = costs;
      base_designs = designs;
      continue;
    }
    for (std::size_t i = 0; i < costs.size(); ++i) {
      EXPECT_DOUBLE_EQ(costs[i], base_costs[i]) << "workers=" << workers;
      EXPECT_EQ(designs[i], base_designs[i]) << "workers=" << workers;
    }
  }
}

TEST(BatchEngine, CacheDoesNotChangeResults) {
  EngineOptions with_cache;
  with_cache.workers = 2;
  EngineOptions without_cache = with_cache;
  without_cache.enable_cache = false;
  const BatchReport a = run_batch(sweep_jobs(3, fixed_work_options()),
                                  with_cache);
  const BatchReport b = run_batch(sweep_jobs(3, fixed_work_options()),
                                  without_cache);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.results[i].solve.cost.total(),
                     b.results[i].solve.cost.total());
  }
  EXPECT_GT(a.metrics.cache.hits, 0);
  EXPECT_EQ(b.metrics.cache.hits + b.metrics.cache.misses, 0);
}

TEST(BatchEngine, CancelsAQueuedJob) {
  BatchEngine engine(engine_with_workers(1));
  // Job 0 holds the single worker long enough for the cancel to land while
  // job 1 is still queued; a cancelled running job is also Cancelled, so the
  // assertion is stable either way.
  DesignSolverOptions slow;
  slow.time_budget_ms = 500.0;
  const int first = engine.submit(DesignJob::make(peer_env(4), slow));
  const int second = engine.submit(DesignJob::make(peer_env(4), slow));
  engine.cancel(second);
  const JobResult cancelled = engine.wait(second);
  EXPECT_EQ(cancelled.status, JobStatus::Cancelled);
  const JobResult ran = engine.wait(first);
  EXPECT_EQ(ran.status, JobStatus::Completed);
  EXPECT_EQ(engine.metrics().jobs_cancelled, 1);
}

TEST(BatchEngine, ExpiresAJobQueuedPastItsDeadline) {
  BatchEngine engine(engine_with_workers(1));
  DesignSolverOptions slow;
  slow.time_budget_ms = 300.0;
  engine.submit(DesignJob::make(peer_env(4), slow));
  DesignJob hurried = DesignJob::make(peer_env(4), slow);
  hurried.deadline_ms = 1.0;  // expires long before the worker frees up
  const int id = engine.submit(std::move(hurried));
  const JobResult result = engine.wait(id);
  EXPECT_EQ(result.status, JobStatus::Expired);
  EXPECT_EQ(result.run_ms, 0.0);
  EXPECT_EQ(engine.metrics().jobs_expired, 1);
}

TEST(BatchEngine, ReportsASolverFailure) {
  DesignSolverOptions bad;
  bad.breadth = 0;  // rejected by the solver's precondition check
  const BatchReport report =
      run_batch({DesignJob::make(peer_env(4), bad)}, {});
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].status, JobStatus::Failed);
  EXPECT_FALSE(report.results[0].error.empty());
  EXPECT_EQ(report.metrics.jobs_failed, 1);
}

TEST(BatchEngine, ResultsOutliveTheEngine) {
  JobResult result;
  {
    BatchEngine engine(engine_with_workers(2));
    const int id =
        engine.submit(DesignJob::make(peer_env(4), fixed_work_options()));
    result = engine.wait(id);
  }
  // The engine is gone; the result's shared environment keeps the candidate's
  // raw Environment pointer valid.
  ASSERT_EQ(result.status, JobStatus::Completed);
  ASSERT_TRUE(result.solve.feasible);
  EXPECT_NO_THROW(result.solve.best->check_feasible());
  EXPECT_DOUBLE_EQ(result.solve.best->evaluate().total(),
                   result.solve.cost.total());
}

TEST(BatchEngine, MetricsCountersAreConsistent) {
  EngineOptions options;
  options.workers = 4;
  const BatchReport report = run_batch(sweep_jobs(6, fixed_work_options()),
                                       options);
  const EngineMetricsSnapshot& m = report.metrics;
  EXPECT_EQ(m.jobs_submitted, 6);
  EXPECT_EQ(m.jobs_completed, 6);
  EXPECT_EQ(m.jobs_cancelled + m.jobs_expired + m.jobs_failed, 0);
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_GT(m.nodes_evaluated, 0);
  EXPECT_GT(m.evaluations, 0);
  EXPECT_EQ(m.cache.hits + m.cache.misses, m.evaluations);
  EXPECT_GT(m.elapsed_ms, 0.0);
  EXPECT_GT(m.jobs_per_sec(), 0.0);
  EXPECT_GT(m.nodes_per_sec(), 0.0);
  EXPECT_GT(m.p50_job_ms, 0.0);
  EXPECT_GE(m.p95_job_ms, m.p50_job_ms * 0.999);
  std::int64_t nodes = 0;
  for (const auto& r : report.results) nodes += r.solve.nodes_evaluated;
  EXPECT_EQ(m.nodes_evaluated, nodes);
}

TEST(BatchEngine, DesignToolBatchOverSolverOptionFans) {
  DesignTool tool(peer_env(4));
  std::vector<DesignSolverOptions> runs(3, fixed_work_options());
  EngineOptions options;
  options.workers = 3;
  options.seed = 9;
  const BatchReport report = tool.design_batch(runs, options);
  ASSERT_EQ(report.results.size(), 3u);
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const auto& r = report.results[i];
    EXPECT_EQ(r.status, JobStatus::Completed) << r.error;
    EXPECT_TRUE(r.solve.feasible);
    EXPECT_EQ(r.seed, 9u + i);  // the seed fan over one environment
  }
}

TEST(BatchEngine, RejectsAJobWithoutAnEnvironment) {
  BatchEngine engine(engine_with_workers(1));
  EXPECT_THROW(engine.submit(DesignJob{}), InvalidArgument);
}

TEST(JobStatusNames, RoundTrip) {
  EXPECT_STREQ(to_string(JobStatus::Queued), "queued");
  EXPECT_STREQ(to_string(JobStatus::Completed), "completed");
  EXPECT_FALSE(is_terminal(JobStatus::Running));
  EXPECT_TRUE(is_terminal(JobStatus::Failed));
}

TEST(WorkerPool, SubmitAfterStopIsRejectedAndWaitIdleReturns) {
  // Regression: a submit racing shutdown used to increment the pending count
  // and then throw from the closed queue, leaving unfinished_ permanently
  // positive — the next wait_idle() hung forever. Rejected submits must roll
  // the count back.
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.submit([&] { ran.fetch_add(1); }));
  pool.stop();
  EXPECT_FALSE(pool.submit([&] { ran.fetch_add(1); }));
  pool.wait_idle();  // must not hang on the rejected task
  EXPECT_EQ(ran.load(), 1);
}

TEST(WorkerPool, ConcurrentSubmitsRacingStopNeverHangWaitIdle) {
  // Hammer the submit/stop race: every accepted task runs exactly once,
  // every rejected one leaves no trace in the pending count. Run under TSan
  // in CI (this target is in the TSan job's test list).
  for (int round = 0; round < 20; ++round) {
    WorkerPool pool(2);
    std::atomic<int> ran{0};
    std::atomic<int> accepted{0};
    std::vector<std::thread> submitters;
    submitters.reserve(4);
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          if (pool.submit([&] { ran.fetch_add(1); })) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    std::thread stopper([&] { pool.stop(); });
    for (auto& t : submitters) t.join();
    stopper.join();
    pool.wait_idle();  // must return even when submits were rejected
    EXPECT_EQ(ran.load(), accepted.load());
  }
}

TEST(WorkerPool, StopIsIdempotentAndDestructorSafe) {
  WorkerPool pool(1);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.submit([&] { ran.fetch_add(1); }));
  pool.stop();
  pool.stop();  // second stop is a no-op
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace depstor
