#include "core/report.hpp"

#include <gtest/gtest.h>

#include "core/design_tool.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::full_choice;
using testing::peer_env;
using testing::sync_f_backup;

class ReportFixture : public ::testing::Test {
 protected:
  ReportFixture() : env_(peer_env(2)), cand_(&env_) {
    cand_.place_app(0, full_choice(sync_f_backup()));
    cand_.place_app(1, full_choice(testing::backup_only()));
    cost_ = cand_.evaluate();
  }

  Environment env_;
  Candidate cand_;
  CostBreakdown cost_;
};

TEST_F(ReportFixture, JsonContainsApplicationsDevicesAndCost) {
  const std::string json = solution_to_json(env_, cand_, cost_);
  EXPECT_NE(json.find("\"applications\""), std::string::npos);
  EXPECT_NE(json.find("\"devices\""), std::string::npos);
  EXPECT_NE(json.find("\"cost\""), std::string::npos);
  EXPECT_NE(json.find("\"B1\""), std::string::npos);
  EXPECT_NE(json.find("\"Sync mirror (F) with backup\""), std::string::npos);
  EXPECT_NE(json.find("\"annual_total\""), std::string::npos);
}

TEST_F(ReportFixture, JsonIsBalanced) {
  const std::string json = solution_to_json(env_, cand_, cost_);
  // Writer throws on imbalance; double-check braces anyway.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(ReportFixture, JsonMarksUnassignedApps) {
  Candidate partial(&env_);
  partial.place_app(0, full_choice(sync_f_backup()));
  const std::string json =
      solution_to_json(env_, partial, partial.evaluate());
  EXPECT_NE(json.find("\"assigned\":false"), std::string::npos);
}

TEST_F(ReportFixture, JsonSkipsIdleDevices) {
  Candidate cand(&env_);
  cand.place_app(0, full_choice(sync_f_backup()));
  cand.remove_app(0);  // devices exist but are idle
  const std::string json = solution_to_json(env_, cand, cand.evaluate());
  EXPECT_NE(json.find("\"devices\":[]"), std::string::npos);
}

TEST_F(ReportFixture, JsonIncludesBackupChainConfig) {
  const std::string json = solution_to_json(env_, cand_, cost_);
  EXPECT_NE(json.find("\"snapshot_interval_hours\""), std::string::npos);
  EXPECT_NE(json.find("\"cycle\""), std::string::npos);
}

TEST_F(ReportFixture, RecoveryReportCoversEveryScenarioAndApp) {
  const std::string report = recovery_report(env_, cand_);
  // 2 apps: 2 object scenarios + shared array + shared site (both on P1).
  EXPECT_NE(report.find("object(B1)"), std::string::npos);
  EXPECT_NE(report.find("object(C1)"), std::string::npos);
  EXPECT_NE(report.find("array("), std::string::npos);
  EXPECT_NE(report.find("site(P1)"), std::string::npos);
  EXPECT_NE(report.find("failover"), std::string::npos);
  EXPECT_NE(report.find("snapshot-revert"), std::string::npos);
}

TEST_F(ReportFixture, RecoveryReportShowsCopyLevels) {
  const std::string report = recovery_report(env_, cand_);
  EXPECT_NE(report.find("mirror"), std::string::npos);
  EXPECT_NE(report.find("snapshot"), std::string::npos);
}

TEST(Report, EndToEndWithDesignTool) {
  DesignTool tool(scenarios::peer_sites(4));
  DesignSolverOptions o;
  o.time_budget_ms = 300.0;
  o.seed = 9;
  const auto result = tool.design(o);
  ASSERT_TRUE(result.feasible);
  const std::string json =
      solution_to_json(tool.env(), *result.best, result.cost);
  EXPECT_GT(json.size(), 500u);
  const std::string report = recovery_report(tool.env(), *result.best);
  EXPECT_GT(report.size(), 200u);
}

}  // namespace
}  // namespace depstor
