// End-to-end behavior of the full design tool against the paper's headline
// observations (§4.3, §4.4).
#include <gtest/gtest.h>

#include "core/design_tool.hpp"
#include "core/sampler.hpp"
#include "core/scenarios.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

class PeerSitesIntegration : public ::testing::Test {
 protected:
  PeerSitesIntegration() : tool_(scenarios::peer_sites(8)) {
    DesignSolverOptions o;
    o.time_budget_ms = 1200.0;
    o.seed = 101;
    result_ = tool_.design(o);
  }

  DesignTool tool_;
  SolveResult result_;
};

TEST_F(PeerSitesIntegration, DesignIsFeasibleAndComplete) {
  ASSERT_TRUE(result_.feasible);
  EXPECT_EQ(result_.best->assigned_count(), 8);
  EXPECT_NO_THROW(result_.best->check_feasible());
}

TEST_F(PeerSitesIntegration, ToolBeatsHumanHeuristic) {
  BaselineOptions o;
  o.time_budget_ms = 1200.0;
  o.seed = 101;
  const auto human = tool_.design_human(o);
  ASSERT_TRUE(result_.feasible);
  ASSERT_TRUE(human.feasible);
  EXPECT_LT(result_.cost.total(), human.cost.total());
}

TEST_F(PeerSitesIntegration, ToolBeatsRandomHeuristic) {
  BaselineOptions o;
  o.time_budget_ms = 1200.0;
  o.seed = 101;
  const auto random = tool_.design_random(o);
  ASSERT_TRUE(result_.feasible);
  ASSERT_TRUE(random.feasible);
  EXPECT_LT(result_.cost.total(), random.cost.total());
}

TEST_F(PeerSitesIntegration, ToolLandsInLowestCostTailOfSolutionSpace) {
  // §4.3.2: the design tool's solutions fall within the lowest cost
  // percentile of the sampled solution space.
  ASSERT_TRUE(result_.feasible);
  SolutionSpaceSampler sampler(&tool_.env());
  const auto stats = sampler.sample(500, 77);
  EXPECT_LE(stats.percentile_of(result_.cost.total()), 0.02);
}

TEST_F(PeerSitesIntegration, AllAppsCarrySomeTapeBackup) {
  // §4.3.2: "All applications employ some form of tape backup".
  ASSERT_TRUE(result_.feasible);
  for (const auto& asg : result_.best->assignments()) {
    EXPECT_TRUE(asg.technique.has_backup) << tool_.env().app(asg.app_id).name;
  }
}

TEST_F(PeerSitesIntegration, HighOutageAppsUseFailover) {
  ASSERT_TRUE(result_.feasible);
  for (const auto& asg : result_.best->assignments()) {
    if (tool_.env().app(asg.app_id).outage_penalty_rate >= 1e6) {
      EXPECT_EQ(asg.technique.recovery, RecoveryMode::Failover);
    }
  }
}

TEST_F(PeerSitesIntegration, PrimariesUseBothPeerSites) {
  // Peer model: each site is primary for a fraction of the applications.
  ASSERT_TRUE(result_.feasible);
  std::vector<int> load(2, 0);
  for (const auto& asg : result_.best->assignments()) {
    ++load[static_cast<std::size_t>(asg.primary_site)];
  }
  EXPECT_GT(load[0], 0);
  EXPECT_GT(load[1], 0);
}

TEST(ScalabilityIntegration, ToolBeatsBaselinesAtSixteenApps) {
  DesignTool tool(scenarios::multi_site(16, 4, 6));
  DesignSolverOptions d;
  d.time_budget_ms = 1800.0;
  d.seed = 7;
  BaselineOptions b;
  b.time_budget_ms = 1800.0;
  b.seed = 7;
  const auto solver = tool.design(d);
  const auto human = tool.design_human(b);
  ASSERT_TRUE(solver.feasible);
  ASSERT_TRUE(human.feasible);
  // §4.4: the design tool's solutions are cheaper by a clear factor.
  EXPECT_LT(solver.cost.total() * 1.5, human.cost.total());
}

TEST(SensitivityIntegration, CostRisesWithObjectFailureRate) {
  // §4.5 / Figure 5 shape: beyond a threshold, the solver can no longer buy
  // off data-object failures, so total cost rises with the rate.
  Environment lo_env = scenarios::multi_site(8, 4, 6);
  lo_env.failures = FailureModel::sensitivity_baseline();
  lo_env.failures.data_object_rate = 0.1;
  Environment hi_env = lo_env;
  hi_env.failures.data_object_rate = 2.0;

  DesignSolverOptions o;
  o.time_budget_ms = 1200.0;
  o.seed = 13;
  const auto lo = DesignTool(lo_env).design(o);
  const auto hi = DesignTool(hi_env).design(o);
  ASSERT_TRUE(lo.feasible);
  ASSERT_TRUE(hi.feasible);
  EXPECT_GT(hi.cost.total(), lo.cost.total());
}

TEST(SensitivityIntegration, CostNearlyFlatInSiteDisasterRate) {
  // Figures 6/7 shape: the tool compensates for disk/site failure rates
  // with modest outlay increases, so totals move much less than the rate.
  Environment lo_env = scenarios::multi_site(8, 4, 6);
  lo_env.failures = FailureModel::sensitivity_baseline();
  lo_env.failures.site_disaster_rate = 0.02;  // once in 50 years
  Environment hi_env = lo_env;
  hi_env.failures.site_disaster_rate = 0.2;  // once in 5 years — 10×

  DesignSolverOptions o;
  o.time_budget_ms = 1200.0;
  o.seed = 17;
  const auto lo = DesignTool(lo_env).design(o);
  const auto hi = DesignTool(hi_env).design(o);
  ASSERT_TRUE(lo.feasible);
  ASSERT_TRUE(hi.feasible);
  // A 10× rate increase must cost far less than 10× (compensation works).
  EXPECT_LT(hi.cost.total(), lo.cost.total() * 3.0);
}

}  // namespace
}  // namespace depstor
