#include <gtest/gtest.h>

#include "cost/outlay.hpp"
#include "cost/penalty.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace depstor {
namespace {

using testing::backup_only;
using testing::candidate_with;
using testing::full_choice;
using testing::peer_env;
using testing::sync_f_backup;
using testing::sync_r_backup;
using testing::tiny_env;

// --- outlays ---

TEST(Outlay, DeviceAmortizedOverLifetime) {
  Environment env = tiny_env(workload::student_accounts());
  Candidate cand = candidate_with(env, backup_only());
  const int array = cand.assignment(0).primary_array;
  const double annual = annual_device_outlay(cand.pool(), array, env.params);
  EXPECT_NEAR(annual,
              cand.pool().device(array).purchase_cost() /
                  env.params.device_lifetime_years,
              1e-9);
}

TEST(Outlay, IdleDevicesAreFree) {
  Environment env = tiny_env(workload::student_accounts());
  Candidate cand = candidate_with(env, backup_only());
  const int array = cand.assignment(0).primary_array;
  cand.remove_app(0);
  EXPECT_DOUBLE_EQ(annual_device_outlay(cand.pool(), array, env.params), 0.0);
}

TEST(Outlay, SitesChargedOnlyWhenUsed) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  // Backup-only at site 0: site 1 untouched → one site fee.
  cand.place_app(0, full_choice(backup_only()));
  const double sites = annual_site_outlay(cand.pool(), env.params);
  EXPECT_NEAR(sites, 1000000.0 / 3.0, 1e-6);
}

TEST(Outlay, MirroringChargesBothSites) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  EXPECT_NEAR(annual_site_outlay(cand.pool(), env.params),
              2.0 * 1000000.0 / 3.0, 1e-6);
}

TEST(Outlay, VaultFeePerBackupApp) {
  Environment env = peer_env(2);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  cand.place_app(1, full_choice(testing::sync_r_only()));
  EXPECT_DOUBLE_EQ(annual_vault_outlay(cand.assignments(), env.params),
                   env.params.vault_annual_fee);  // only app 0 backs up
}

TEST(Outlay, TotalIsSumOfParts) {
  Environment env = peer_env(2);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  cand.place_app(1, full_choice(backup_only()));
  double devices = 0.0;
  for (int id = 0; id < cand.pool().device_count(); ++id) {
    devices += annual_device_outlay(cand.pool(), id, env.params);
  }
  EXPECT_NEAR(annual_outlay(cand.pool(), cand.assignments(), env.params),
              devices + annual_site_outlay(cand.pool(), env.params) +
                  annual_vault_outlay(cand.assignments(), env.params),
              1e-6);
}

TEST(Outlay, LongerLifetimeLowersAnnualCost) {
  Environment env = tiny_env(workload::student_accounts());
  Candidate cand = candidate_with(env, backup_only());
  ModelParams longer = env.params;
  longer.device_lifetime_years = 6.0;
  EXPECT_LT(annual_outlay(cand.pool(), cand.assignments(), longer),
            annual_outlay(cand.pool(), cand.assignments(), env.params));
}

// --- penalties ---

TEST(Penalty, ZeroRatesZeroPenalty) {
  Environment env = tiny_env(workload::central_banking());
  env.failures = FailureModel{};
  env.failures.data_object_rate = 0.0;
  env.failures.disk_array_rate = 0.0;
  env.failures.site_disaster_rate = 0.0;
  Candidate cand = candidate_with(env, sync_f_backup());
  const auto details = compute_penalties(env.apps, cand.assignments(),
                                         cand.pool(), env.failures,
                                         env.params);
  EXPECT_DOUBLE_EQ(details[0].outage_penalty, 0.0);
  EXPECT_DOUBLE_EQ(details[0].loss_penalty, 0.0);
}

TEST(Penalty, ScalesLinearlyWithFailureRate) {
  Environment env = tiny_env(workload::central_banking());
  Candidate cand = candidate_with(env, sync_f_backup());
  FailureModel f1;
  f1.data_object_rate = 1.0;
  f1.disk_array_rate = 0.0;
  f1.site_disaster_rate = 0.0;
  FailureModel f3 = f1;
  f3.data_object_rate = 3.0;
  const auto d1 = compute_penalties(env.apps, cand.assignments(), cand.pool(),
                                    f1, env.params);
  const auto d3 = compute_penalties(env.apps, cand.assignments(), cand.pool(),
                                    f3, env.params);
  EXPECT_NEAR(d3[0].loss_penalty, 3.0 * d1[0].loss_penalty, 1e-6);
  EXPECT_NEAR(d3[0].outage_penalty, 3.0 * d1[0].outage_penalty, 1e-6);
}

TEST(Penalty, UsesPerAppPenaltyRates) {
  // Same design, same workload numbers, different rates → proportional
  // penalties.
  ApplicationSpec expensive = workload::student_accounts();
  expensive.outage_penalty_rate = 1e6;
  expensive.loss_penalty_rate = 2e6;
  Environment env = tiny_env(expensive);
  Candidate cand = candidate_with(env, backup_only());
  const auto d = compute_penalties(env.apps, cand.assignments(), cand.pool(),
                                   env.failures, env.params);
  EXPECT_NEAR(d[0].outage_penalty, d[0].expected_outage_hours * 1e6, 1e-6);
  EXPECT_NEAR(d[0].loss_penalty, d[0].expected_loss_hours * 2e6, 1e-6);
}

TEST(Penalty, UnassignedAppsHaveZeroDetail) {
  Environment env = peer_env(2);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  const auto d = compute_penalties(env.apps, cand.assignments(), cand.pool(),
                                   env.failures, env.params);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_GT(d[0].loss_penalty, 0.0);
  EXPECT_DOUBLE_EQ(d[1].outage_penalty, 0.0);
  EXPECT_DOUBLE_EQ(d[1].loss_penalty, 0.0);
}

TEST(Penalty, FailoverBeatsReconstructOnOutage) {
  Environment env_f = tiny_env(workload::web_service());
  Environment env_r = tiny_env(workload::web_service());
  Candidate f = candidate_with(env_f, sync_f_backup());
  Candidate r = candidate_with(env_r, sync_r_backup());
  const auto df = compute_penalties(env_f.apps, f.assignments(), f.pool(),
                                    env_f.failures, env_f.params);
  const auto dr = compute_penalties(env_r.apps, r.assignments(), r.pool(),
                                    env_r.failures, env_r.params);
  EXPECT_LT(df[0].outage_penalty, dr[0].outage_penalty);
}

TEST(Penalty, MirrorOnlyPaysUnprotectedObjectLoss) {
  Environment env = tiny_env(workload::central_banking());
  Candidate cand = candidate_with(env, testing::sync_f_only());
  const auto d = compute_penalties(env.apps, cand.assignments(), cand.pool(),
                                   env.failures, env.params);
  // Object failures at 1/3 per year × 720 h unprotected loss.
  EXPECT_GE(d[0].expected_loss_hours,
            env.failures.data_object_rate * env.params.unprotected_loss_hours);
}

// --- full evaluation ---

TEST(EvaluateCost, TotalsAreConsistent) {
  Environment env = peer_env(4);
  Candidate cand(&env);
  for (int i = 0; i < 4; ++i) cand.place_app(i, full_choice(sync_r_backup()));
  const CostBreakdown cost = cand.evaluate();
  double outage = 0.0;
  double loss = 0.0;
  for (const auto& d : cost.per_app) {
    outage += d.outage_penalty;
    loss += d.loss_penalty;
  }
  EXPECT_NEAR(cost.outage_penalty, outage, 1e-6);
  EXPECT_NEAR(cost.loss_penalty, loss, 1e-6);
  EXPECT_NEAR(cost.total(), cost.outlay + cost.penalty(), 1e-6);
  EXPECT_GT(cost.outlay, 0.0);
}

TEST(EvaluateCost, EmptyCandidateHasNoCost) {
  Environment env = peer_env(2);
  Candidate cand(&env);
  const CostBreakdown cost = cand.evaluate();
  EXPECT_DOUBLE_EQ(cost.total(), 0.0);
}

class PenaltyMonotoneInRate : public ::testing::TestWithParam<double> {};

TEST_P(PenaltyMonotoneInRate, HigherObjectRateNeverCheapens) {
  Environment env = tiny_env(workload::consumer_banking());
  Candidate cand = candidate_with(env, sync_r_backup());
  FailureModel low = env.failures;
  FailureModel high = env.failures;
  high.data_object_rate = low.data_object_rate * GetParam();
  const auto dl = compute_penalties(env.apps, cand.assignments(), cand.pool(),
                                    low, env.params);
  const auto dh = compute_penalties(env.apps, cand.assignments(), cand.pool(),
                                    high, env.params);
  EXPECT_GE(dh[0].loss_penalty + dh[0].outage_penalty,
            dl[0].loss_penalty + dl[0].outage_penalty);
}

INSTANTIATE_TEST_SUITE_P(Factors, PenaltyMonotoneInRate,
                         ::testing::Values(1.0, 2.0, 5.0, 10.0, 100.0));

}  // namespace
}  // namespace depstor
