#include <gtest/gtest.h>

#include <chrono>

#include "solver/design_solver.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::peer_env;
using testing::solve_design;

DesignSolverOptions quick_options(std::uint64_t seed = 1) {
  DesignSolverOptions o;
  o.time_budget_ms = 400.0;
  o.seed = seed;
  return o;
}

TEST(DesignSolver, FindsFeasiblePeerSitesDesign) {
  Environment env = peer_env(8);
  const SolveResult result = solve_design(env, quick_options());
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.best->assigned_count(), 8);
  EXPECT_NO_THROW(result.best->check_feasible());
  EXPECT_GT(result.cost.total(), 0.0);
  EXPECT_GT(result.nodes_evaluated, 0);
}

TEST(DesignSolver, ReportedCostMatchesCandidate) {
  Environment env = peer_env(4);
  const SolveResult result = solve_design(env, quick_options(2));
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.cost.total(), result.best->evaluate().total(),
              result.cost.total() * 1e-9);
}

TEST(DesignSolver, DeterministicUnderSeedWithRepetitionCap) {
  // Bound by repetitions rather than wall clock for exact reproducibility.
  DesignSolverOptions o;
  o.time_budget_ms = 60000.0;  // generous; the repetition cap binds first
  o.max_repetitions = 1;
  o.max_refit_iterations = 2;
  o.breadth = 2;
  o.depth = 2;
  o.seed = 77;
  Environment env = peer_env(4);
  Environment env2 = peer_env(4);
  const auto r1 = solve_design(env, o);
  const auto r2 = solve_design(env2, o);
  ASSERT_TRUE(r1.feasible);
  ASSERT_TRUE(r2.feasible);
  EXPECT_DOUBLE_EQ(r1.cost.total(), r2.cost.total());
  EXPECT_EQ(r1.nodes_evaluated, r2.nodes_evaluated);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r1.best->assignment(i).technique.name,
              r2.best->assignment(i).technique.name);
  }
}

TEST(DesignSolver, AllCriticalAppsGetBackup) {
  // §4.3.2: "All applications employ some form of tape backup to support
  // recovery from user errors" — at minimum, the loss-critical ones must.
  Environment env = peer_env(8);
  const SolveResult result = solve_design(env, quick_options(3));
  ASSERT_TRUE(result.feasible);
  for (const auto& asg : result.best->assignments()) {
    const auto& app = env.app(asg.app_id);
    if (app.loss_penalty_rate >= 1e6 || app.outage_penalty_rate >= 1e6) {
      EXPECT_TRUE(asg.technique.has_backup)
          << app.name << " lacks backup: " << asg.technique.name;
    }
  }
}

TEST(DesignSolver, HighOutageAppsEmployFailover) {
  // §4.3.2: "applications with high data outage penalty rates always employ
  // failover for recovery".
  Environment env = peer_env(8);
  const SolveResult result = solve_design(env, quick_options(4));
  ASSERT_TRUE(result.feasible);
  for (const auto& asg : result.best->assignments()) {
    const auto& app = env.app(asg.app_id);
    if (app.outage_penalty_rate >= 1e6) {
      EXPECT_EQ(asg.technique.recovery, RecoveryMode::Failover) << app.name;
    }
  }
}

TEST(DesignSolver, InfeasibleEnvironmentReportsInfeasible) {
  // Gold apps demand mirroring, but the sites are disconnected.
  Environment env = peer_env(1);
  env.topology.pair_limits.clear();
  env.validate();
  DesignSolverOptions o = quick_options();
  o.time_budget_ms = 200.0;
  const SolveResult result = solve_design(env, o);
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.best.has_value());
}

TEST(DesignSolver, MaxPenaltyGreedyOrderAlsoWorks) {
  Environment env = peer_env(4);
  DesignSolverOptions o = quick_options(5);
  o.greedy_order = GreedyOrder::MaxPenalty;
  const SolveResult result = solve_design(env, o);
  EXPECT_TRUE(result.feasible);
}

TEST(DesignSolver, RespectsTimeBudgetRoughly) {
  Environment env = peer_env(8);
  DesignSolverOptions o = quick_options(6);
  o.time_budget_ms = 300.0;
  const auto start = std::chrono::steady_clock::now();
  solve_design(env, o);
  const double elapsed =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  // Allow generous overshoot: the budget is checked between nodes.
  EXPECT_LT(elapsed, 4000.0);
}

TEST(DesignSolver, MoreRepetitionsNeverHurt) {
  // Identical seed and a repetition cap: repetition 1 is common to both
  // runs, and the global best keeps the minimum, so three repetitions can
  // only match or improve on one.
  DesignSolverOptions one = quick_options(7);
  one.time_budget_ms = 60000.0;
  one.max_repetitions = 1;
  one.max_refit_iterations = 1;
  DesignSolverOptions three = one;
  three.max_repetitions = 3;
  Environment env = peer_env(8);
  Environment env2 = peer_env(8);
  const auto r_one = solve_design(env, one);
  const auto r_three = solve_design(env2, three);
  ASSERT_TRUE(r_one.feasible);
  ASSERT_TRUE(r_three.feasible);
  EXPECT_LE(r_three.cost.total(), r_one.cost.total() + 1e-6);
}

TEST(DesignSolver, OptionValidation) {
  Environment env = peer_env(1);
  DesignSolverOptions o;
  o.breadth = 0;
  EXPECT_THROW(solve_design(env, o), InvalidArgument);
  o = DesignSolverOptions{};
  o.depth = 0;
  EXPECT_THROW(solve_design(env, o), InvalidArgument);
  o = DesignSolverOptions{};
  o.max_greedy_restarts = 0;
  EXPECT_THROW(solve_design(env, o), InvalidArgument);
}

TEST(DesignSolver, EveryAppAssignedExactlyOnce) {
  Environment env = peer_env(8);
  const auto result = solve_design(env, quick_options(8));
  ASSERT_TRUE(result.feasible);
  std::vector<bool> seen(8, false);
  for (const auto& asg : result.best->assignments()) {
    ASSERT_TRUE(asg.assigned);
    ASSERT_GE(asg.app_id, 0);
    ASSERT_LT(asg.app_id, 8);
    EXPECT_FALSE(seen[static_cast<std::size_t>(asg.app_id)]);
    seen[static_cast<std::size_t>(asg.app_id)] = true;
  }
}

}  // namespace
}  // namespace depstor
