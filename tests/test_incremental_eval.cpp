// Equivalence regression for the incremental evaluator (cost/incremental):
// across long randomized mutation sequences, Candidate::evaluate() must
// match a from-scratch evaluate_cost bit-for-bit — not approximately — at
// every step. Exact equality is the design contract: the incremental path
// accumulates penalties and outlays in the same order as the full
// evaluator, so any difference at all is a soundness bug, not float noise.
#include <gtest/gtest.h>

#include "cost/incremental.hpp"
#include "solver/config_solver.hpp"
#include "solver/reconfigure.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace depstor {
namespace {

using testing::backup_only;
using testing::full_choice;
using testing::peer_env;
using testing::sync_r_backup;

void expect_exact(const CostBreakdown& inc, const CostBreakdown& full) {
  EXPECT_EQ(inc.outlay, full.outlay);
  EXPECT_EQ(inc.outage_penalty, full.outage_penalty);
  EXPECT_EQ(inc.loss_penalty, full.loss_penalty);
  ASSERT_EQ(inc.per_app.size(), full.per_app.size());
  for (std::size_t i = 0; i < inc.per_app.size(); ++i) {
    EXPECT_EQ(inc.per_app[i].app_id, full.per_app[i].app_id);
    EXPECT_EQ(inc.per_app[i].outage_penalty, full.per_app[i].outage_penalty);
    EXPECT_EQ(inc.per_app[i].loss_penalty, full.per_app[i].loss_penalty);
    EXPECT_EQ(inc.per_app[i].expected_outage_hours,
              full.per_app[i].expected_outage_hours);
    EXPECT_EQ(inc.per_app[i].expected_loss_hours,
              full.per_app[i].expected_loss_hours);
  }
}

CostBreakdown full_recompute(const Environment& env, const Candidate& cand) {
  return evaluate_cost(env.apps, cand.assignments(), cand.pool(),
                       env.failures, env.params);
}

Candidate placed_candidate(const Environment& env, std::uint64_t seed) {
  Candidate cand(&env);
  Rng rng(seed);
  Reconfigurator rec(&env, &rng);
  for (int i = 0; i < static_cast<int>(env.apps.size()); ++i) {
    if (!rec.reconfigure_app(cand, i)) {
      throw InfeasibleError("test setup could not place app");
    }
  }
  return cand;
}

/// One random mutation from the configuration-solver repertoire: backup
/// chain re-config, extra units, spare toggles, remove + re-place.
void random_mutation(Candidate& cand, const Environment& env, Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0: {  // backup-chain grid point
      std::vector<int> with_backup;
      for (const auto& asg : cand.assignments()) {
        if (asg.assigned && asg.technique.has_backup) {
          with_backup.push_back(asg.app_id);
        }
      }
      if (with_backup.empty()) return;
      const int app = with_backup[rng.index(with_backup.size())];
      BackupChainConfig cfg = cand.assignment(app).backup;
      const auto& snaps = env.policies.snapshot_intervals_hours;
      const auto& backups = env.policies.backup_intervals_hours;
      cfg.snapshot_interval_hours = snaps[rng.index(snaps.size())];
      cfg.backup_interval_hours = backups[rng.index(backups.size())];
      if (cfg.backup_interval_hours < cfg.snapshot_interval_hours) {
        cfg.backup_interval_hours = cfg.snapshot_interval_hours;
      }
      try {
        cand.set_backup_config(app, cfg);
      } catch (const InfeasibleError&) {
      }
      return;
    }
    case 1: {  // extra units on a random in-use device
      const int n = cand.pool().device_count();
      if (n == 0) return;
      const int id = rng.uniform_int(0, n - 1);
      if (!cand.pool().in_use(id)) return;
      const int extra = rng.uniform_int(0, 2);
      if (rng.chance(0.5)) {
        cand.set_extra_bandwidth_units(id, extra);
      } else {
        cand.set_extra_capacity_units(id, extra);
      }
      return;
    }
    case 2: {  // hot-spare toggle
      const int site = rng.uniform_int(0, env.topology.site_count() - 1);
      const auto& type = env.array_types[rng.index(env.array_types.size())];
      try {
        cand.set_spare_array(site, type.name, rng.chance(0.5));
      } catch (const InfeasibleError&) {
      }
      return;
    }
    default: {  // remove + re-place an app with its own choice
      std::vector<int> assigned;
      for (const auto& asg : cand.assignments()) {
        if (asg.assigned) assigned.push_back(asg.app_id);
      }
      if (assigned.empty()) return;
      const int app = assigned[rng.index(assigned.size())];
      const DesignChoice choice = cand.choice(app);
      cand.remove_app(app);
      cand.place_app(app, choice);
      return;
    }
  }
}

void run_mutation_sequence(const Environment& env, int steps,
                           std::uint64_t seed) {
  Candidate cand = placed_candidate(env, seed);
  ASSERT_TRUE(cand.incremental_enabled());
  Rng rng(seed ^ 0xabcdef);
  IncrementalStats stats;
  expect_exact(cand.evaluate(&stats), full_recompute(env, cand));
  for (int step = 0; step < steps; ++step) {
    random_mutation(cand, env, rng);
    const CostBreakdown inc = cand.evaluate(&stats);
    const CostBreakdown full = full_recompute(env, cand);
    expect_exact(inc, full);
    if (::testing::Test::HasFailure()) {
      FAIL() << "divergence at mutation step " << step;
    }
  }
  // The whole point: a solid share of scenarios must come from the cache.
  // Site-scoped mutations (spares, app moves) legitimately invalidate every
  // scenario touching that site, so in few-site topologies the reuse rate
  // hovers near 50% rather than 90% — require at least a fifth of the total.
  EXPECT_GT(stats.scenarios_reused, 0);
  EXPECT_GT(stats.scenarios_reused * 4, stats.scenarios_simulated);
  EXPECT_GT(stats.incremental_evaluations, 0);
}

TEST(IncrementalEval, RandomizedMutationsPeerSites) {
  run_mutation_sequence(peer_env(6), 250, 11);
}

TEST(IncrementalEval, RandomizedMutationsMultiSite) {
  run_mutation_sequence(scenarios::multi_site(12, 4, 6), 250, 23);
}

TEST(IncrementalEval, RandomizedMutationsRegionalFailures) {
  Environment env = scenarios::multi_site(8, 4, 6);
  env.failures.regional_disaster_rate = 0.05;
  env.validate();
  run_mutation_sequence(env, 200, 37);
}

TEST(IncrementalEval, CopiedCandidateKeepsIndependentCache) {
  const Environment env = peer_env(4);
  Candidate a = placed_candidate(env, 3);
  a.evaluate();  // warm a's cache
  Candidate b = a;
  // Mutate the copy only: both candidates must still evaluate exactly.
  b.set_extra_bandwidth_units(b.assignment(0).primary_array, 1);
  expect_exact(b.evaluate(), full_recompute(env, b));
  expect_exact(a.evaluate(), full_recompute(env, a));
}

TEST(IncrementalEval, DisabledModeMatchesAndReenableRebuilds) {
  const Environment env = peer_env(4);
  Candidate cand = placed_candidate(env, 7);
  cand.evaluate();  // warm the incremental cache
  cand.set_incremental_enabled(false);
  EXPECT_FALSE(cand.incremental_enabled());
  cand.set_extra_capacity_units(cand.assignment(1).primary_array, 1);
  expect_exact(cand.evaluate(), full_recompute(env, cand));
  // Re-enabling must not reuse the now-stale cache silently.
  cand.set_incremental_enabled(true);
  IncrementalStats stats;
  expect_exact(cand.evaluate(&stats), full_recompute(env, cand));
  EXPECT_EQ(stats.scenarios_reused, 0);
  EXPECT_GT(stats.scenarios_simulated, 0);
}

TEST(IncrementalEval, UnchangedReevaluationReusesEverything) {
  const Environment env = peer_env(4);
  Candidate cand = placed_candidate(env, 5);
  cand.evaluate();  // populate
  IncrementalStats stats;
  const CostBreakdown again = cand.evaluate(&stats);
  expect_exact(again, full_recompute(env, cand));
  EXPECT_EQ(stats.scenarios_simulated, 0);
  EXPECT_GT(stats.scenarios_reused, 0);
}

TEST(IncrementalEval, ConfigSolverResultsIdenticalEitherPath) {
  const Environment env = peer_env(4);
  Candidate with = placed_candidate(env, 9);
  Candidate without = with;
  without.set_incremental_enabled(false);
  ConfigSolver solver_a(&env);
  ConfigSolver solver_b(&env);
  const CostBreakdown a = solver_a.solve(with);
  const CostBreakdown b = solver_b.solve(without);
  expect_exact(a, b);
  // The incremental run reports reuse; the full run cannot.
  EXPECT_GT(solver_a.stats().incremental.scenarios_reused, 0);
  EXPECT_EQ(solver_b.stats().incremental.scenarios_reused, 0);
  EXPECT_EQ(solver_b.stats().incremental.scenarios_simulated, 0);
}

TEST(IncrementalEval, DirtySetCoarsensPastThreshold) {
  DirtySet dirty;
  dirty.clear();
  EXPECT_TRUE(dirty.empty());
  for (int i = 0; i < 100; ++i) dirty.mark_device(i);
  EXPECT_TRUE(dirty.all);  // coarsened instead of growing without bound
  dirty.clear();
  dirty.mark_app(1);
  dirty.mark_site(0);
  EXPECT_FALSE(dirty.all);
  EXPECT_FALSE(dirty.empty());
}

TEST(IncrementalEval, PartialCandidateMatchesDuringGreedyStyleGrowth) {
  // Apps appear one at a time (greedy stage): scenario sets change shape
  // every step, exercising entry realignment rather than the aligned fast
  // path.
  const Environment env = peer_env(5);
  Candidate cand(&env);
  expect_exact(cand.evaluate(), full_recompute(env, cand));
  for (int i = 0; i < 5; ++i) {
    cand.place_app(i, full_choice(i % 2 == 0 ? sync_r_backup()
                                             : backup_only()));
    expect_exact(cand.evaluate(), full_recompute(env, cand));
  }
  for (int i = 4; i >= 0; --i) {
    cand.remove_app(i);
    expect_exact(cand.evaluate(), full_recompute(env, cand));
  }
}

/// First in-use device that accepts one more extra bandwidth unit, or -1.
int probeable_device(Candidate& cand) {
  for (const auto& dev : cand.pool().devices()) {
    if (!cand.pool().in_use(dev.id)) continue;
    const int extra = dev.extra_bandwidth_units;
    if (cand.set_extra_bandwidth_units(dev.id, extra + 1) == extra + 1) {
      cand.set_extra_bandwidth_units(dev.id, extra);
      return dev.id;
    }
  }
  return -1;
}

TEST(IncrementalEval, AbortedProbeCostsNothingAtNextEvaluation) {
  const Environment env = peer_env(6);
  Candidate cand = placed_candidate(env, 99);
  cand.evaluate();  // commit the cache
  const int dev = probeable_device(cand);
  ASSERT_GE(dev, 0);
  cand.evaluate();  // flush the marks probeable_device left behind

  cand.begin_probe();
  const int extra = cand.pool().device(dev).extra_bandwidth_units;
  ASSERT_EQ(cand.set_extra_bandwidth_units(dev, extra + 1), extra + 1);
  IncrementalStats during;
  expect_exact(cand.evaluate(&during), full_recompute(env, cand));
  EXPECT_GT(during.scenarios_simulated, 0);  // the probe itself is genuine
  cand.set_extra_bandwidth_units(dev, extra);
  cand.abort_probe();

  // The revert re-simulates nothing: the trial stashed the committed
  // results and abort_probe swapped them back.
  IncrementalStats after;
  expect_exact(cand.evaluate(&after), full_recompute(env, cand));
  EXPECT_EQ(after.scenarios_simulated, 0);
  EXPECT_GT(after.scenarios_reused, 0);
}

TEST(IncrementalEval, CommittedProbeKeepsTrialResults) {
  const Environment env = peer_env(6);
  Candidate cand = placed_candidate(env, 99);
  cand.evaluate();
  const int dev = probeable_device(cand);
  ASSERT_GE(dev, 0);
  cand.evaluate();

  cand.begin_probe();
  const int extra = cand.pool().device(dev).extra_bandwidth_units;
  ASSERT_EQ(cand.set_extra_bandwidth_units(dev, extra + 1), extra + 1);
  cand.evaluate();
  cand.commit_probe();  // keep the probe: mutation stays applied

  IncrementalStats after;
  expect_exact(cand.evaluate(&after), full_recompute(env, cand));
  EXPECT_EQ(after.scenarios_simulated, 0);
}

TEST(IncrementalEval, SolverStyleProbeRoundsStayExact) {
  // The increment loop's shape: rounds of probe → evaluate → revert →
  // abort over every in-use device, then one accepted purchase per round.
  // Every evaluation must stay bit-exact, including the ones served
  // entirely from restored trial stashes.
  const Environment env = scenarios::multi_site(8, 4, 6);
  Candidate cand = placed_candidate(env, 7);
  cand.evaluate();
  for (int round = 0; round < 3; ++round) {
    int bought = -1;
    for (const auto& dev : cand.pool().devices()) {
      if (!cand.pool().in_use(dev.id)) continue;
      cand.begin_probe();
      const int extra = dev.extra_bandwidth_units;
      if (cand.set_extra_bandwidth_units(dev.id, extra + 1) == extra + 1) {
        expect_exact(cand.evaluate(), full_recompute(env, cand));
        bought = dev.id;
      }
      cand.set_extra_bandwidth_units(dev.id, extra);
      cand.abort_probe();
      expect_exact(cand.evaluate(), full_recompute(env, cand));
      if (::testing::Test::HasFailure()) {
        FAIL() << "divergence at round " << round << " device " << dev.id;
      }
    }
    if (bought >= 0) {
      cand.set_extra_bandwidth_units(
          bought, cand.pool().device(bought).extra_bandwidth_units + 1);
      expect_exact(cand.evaluate(), full_recompute(env, cand));
    }
  }
}

}  // namespace
}  // namespace depstor
