#include "core/env_loader.hpp"

#include <gtest/gtest.h>

#include "core/design_tool.hpp"
#include "util/check.hpp"

namespace depstor {
namespace {

const char* kMinimalEnv = R"(
[site]
name = east

[site]
name = west
region = 1
max_compute_slots = 4

[link]
a = east
b = west
max_links = 12

[application]
name = billing
outage_penalty_rate = 2e6
loss_penalty_rate = 8e6
data_size_gb = 900
avg_update_mbps = 3
peak_update_mbps = 25
avg_access_mbps = 30

[application]
name = wiki
outage_penalty_rate = 2e3
loss_penalty_rate = 8e3
data_size_gb = 200
avg_update_mbps = 0.2

[failures]
data_object_rate = 1.0
regional_disaster_rate = 0.02
)";

TEST(EnvLoader, ParsesMinimalEnvironment) {
  const Environment env = environment_from_ini(kMinimalEnv);
  ASSERT_EQ(env.topology.site_count(), 2);
  EXPECT_EQ(env.topology.site(0).name, "east");
  EXPECT_EQ(env.topology.site(1).region, 1);
  EXPECT_EQ(env.topology.site(1).max_compute_slots, 4);
  EXPECT_EQ(env.topology.max_links(0, 1), 12);
  ASSERT_EQ(env.apps.size(), 2u);
  EXPECT_EQ(env.apps[0].name, "billing");
  EXPECT_EQ(env.apps[0].id, 0);
  EXPECT_DOUBLE_EQ(env.apps[0].outage_penalty_rate, 2e6);
  EXPECT_DOUBLE_EQ(env.failures.data_object_rate, 1.0);
  EXPECT_DOUBLE_EQ(env.failures.regional_disaster_rate, 0.02);
}

TEST(EnvLoader, AppliesDefaultsForOptionalFields) {
  const Environment env = environment_from_ini(kMinimalEnv);
  const auto& wiki = env.apps[1];
  EXPECT_DOUBLE_EQ(wiki.peak_update_mbps, wiki.avg_update_mbps);
  EXPECT_DOUBLE_EQ(wiki.avg_access_mbps, wiki.avg_update_mbps);
  EXPECT_NEAR(wiki.unique_update_mbps, 0.4 * wiki.avg_update_mbps, 1e-12);
  // Default catalogs: the full Table 3.
  EXPECT_EQ(env.array_types.size(), 3u);
  EXPECT_EQ(env.tape_types.size(), 2u);
  // Default failure rates where unspecified.
  EXPECT_NEAR(env.failures.disk_array_rate, 1.0 / 3.0, 1e-12);
}

TEST(EnvLoader, SitesReferencedByIndexToo) {
  const std::string text = std::string(kMinimalEnv) +
                           "[link]\na = 0\nb = 1\nmax_links = 2\n";
  // Duplicate pair is legal at parse level (validate() allows it; max_links
  // queries return the first match).
  const Environment env = environment_from_ini(text);
  EXPECT_EQ(env.topology.pair_limits.size(), 2u);
}

TEST(EnvLoader, CatalogRestriction) {
  const std::string text = std::string(kMinimalEnv) +
                           "[catalog]\narrays = XP1200\ntapes = "
                           "TapeLib-Med\nnetworks = Net-Med\n";
  const Environment env = environment_from_ini(text);
  ASSERT_EQ(env.array_types.size(), 1u);
  EXPECT_EQ(env.array_types[0].name, "XP1200");
  ASSERT_EQ(env.tape_types.size(), 1u);
  EXPECT_EQ(env.tape_types[0].name, "TapeLib-Med");
}

TEST(EnvLoader, Errors) {
  EXPECT_THROW(environment_from_ini("[application]\nname = x\n"),
               InvalidArgument);  // no sites, missing app fields
  EXPECT_THROW(environment_from_ini("[site]\nname = s\n"),
               InvalidArgument);  // no applications
  EXPECT_THROW(environment_from_ini(std::string(kMinimalEnv) +
                                    "[mystery]\nk = v\n"),
               InvalidArgument);  // unknown section
  EXPECT_THROW(environment_from_ini(std::string(kMinimalEnv) +
                                    "[link]\na = nowhere\nb = east\n"
                                    "max_links = 1\n"),
               InvalidArgument);  // unknown site reference
  EXPECT_THROW(environment_from_ini(std::string(kMinimalEnv) +
                                    "[catalog]\narrays = Net-High\n"),
               InvalidArgument);  // wrong device kind
  EXPECT_THROW(load_environment("/nonexistent/path.ini"), InvalidArgument);
}

// Duplicate names used to silently overwrite (last section won); they are
// now a hard loader error with the section/line locus in the message.
TEST(EnvLoader, RejectsDuplicateSiteName) {
  try {
    environment_from_ini(std::string(kMinimalEnv) + "[site]\nname = east\n");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate site name"), std::string::npos) << what;
    EXPECT_NE(what.find("[site]"), std::string::npos) << what;
    EXPECT_NE(what.find("line"), std::string::npos) << what;
  }
}

TEST(EnvLoader, RejectsDuplicateApplicationName) {
  const std::string text = std::string(kMinimalEnv) +
                           "[application]\nname = billing\n"
                           "outage_penalty_rate = 1\nloss_penalty_rate = 1\n"
                           "data_size_gb = 10\navg_update_mbps = 1\n";
  try {
    environment_from_ini(text);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate application name"), std::string::npos)
        << what;
    EXPECT_NE(what.find("billing"), std::string::npos) << what;
  }
}

TEST(EnvLoader, RejectsDuplicateCatalogDevice) {
  try {
    environment_from_ini(std::string(kMinimalEnv) +
                         "[catalog]\narrays = XP1200, XP1200\n");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate device type"), std::string::npos) << what;
    EXPECT_NE(what.find("XP1200"), std::string::npos) << what;
  }
}

TEST(EnvLoader, LoadedEnvironmentIsDesignable) {
  Environment env = environment_from_ini(kMinimalEnv);
  DesignTool tool(std::move(env));
  DesignSolverOptions o;
  o.time_budget_ms = 600.0;
  o.seed = 19;
  const auto result = tool.design(o);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.best->assigned_count(), 2);
}

}  // namespace
}  // namespace depstor
