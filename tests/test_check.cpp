#include "util/check.hpp"

#include <gtest/gtest.h>

namespace depstor {
namespace {

TEST(Check, ExpectsPassesOnTrue) {
  EXPECT_NO_THROW(DEPSTOR_EXPECTS(1 + 1 == 2));
}

TEST(Check, ExpectsThrowsInvalidArgument) {
  EXPECT_THROW(DEPSTOR_EXPECTS(false), InvalidArgument);
}

TEST(Check, EnsuresThrowsInternalError) {
  EXPECT_THROW(DEPSTOR_ENSURES(false), InternalError);
}

TEST(Check, MessageContainsExpressionAndLocation) {
  try {
    DEPSTOR_EXPECTS_MSG(2 < 1, "two is not less than one");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

TEST(Check, InvalidArgumentIsStdInvalidArgument) {
  EXPECT_THROW(DEPSTOR_EXPECTS(false), std::invalid_argument);
}

TEST(Check, InternalErrorIsLogicError) {
  EXPECT_THROW(DEPSTOR_ENSURES(false), std::logic_error);
}

TEST(Check, InfeasibleIsRuntimeError) {
  EXPECT_THROW(throw InfeasibleError("x"), std::runtime_error);
}

TEST(Check, SideEffectsEvaluatedExactlyOnce) {
  int calls = 0;
  auto count = [&] {
    ++calls;
    return true;
  };
  DEPSTOR_EXPECTS(count());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace depstor
