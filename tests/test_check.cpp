#include "util/check.hpp"

#include <gtest/gtest.h>

#include "solver/design_solver.hpp"
#include "solver/solution.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

TEST(Check, ExpectsPassesOnTrue) {
  EXPECT_NO_THROW(DEPSTOR_EXPECTS(1 + 1 == 2));
}

TEST(Check, ExpectsThrowsInvalidArgument) {
  EXPECT_THROW(DEPSTOR_EXPECTS(false), InvalidArgument);
}

TEST(Check, EnsuresThrowsInternalError) {
  EXPECT_THROW(DEPSTOR_ENSURES(false), InternalError);
}

TEST(Check, MessageContainsExpressionAndLocation) {
  try {
    DEPSTOR_EXPECTS_MSG(2 < 1, "two is not less than one");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

TEST(Check, InvalidArgumentIsStdInvalidArgument) {
  EXPECT_THROW(DEPSTOR_EXPECTS(false), std::invalid_argument);
}

TEST(Check, InternalErrorIsLogicError) {
  EXPECT_THROW(DEPSTOR_ENSURES(false), std::logic_error);
}

TEST(Check, InfeasibleIsRuntimeError) {
  EXPECT_THROW(throw InfeasibleError("x"), std::runtime_error);
}

TEST(Check, SideEffectsEvaluatedExactlyOnce) {
  int calls = 0;
  auto count = [&] {
    ++calls;
    return true;
  };
  DEPSTOR_EXPECTS(count());
  EXPECT_EQ(calls, 1);
}

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(DEPSTOR_REQUIRE(2 + 2 == 4));
}

TEST(Check, RequireThrowsInfeasibleError) {
  EXPECT_THROW(DEPSTOR_REQUIRE(false), InfeasibleError);
}

TEST(Check, RequireIsNotALogicError) {
  // The search layer must be able to catch feasibility failures without
  // also swallowing genuine bugs: InfeasibleError stays outside the
  // logic_error branch of the exception taxonomy.
  try {
    DEPSTOR_REQUIRE(false);
    FAIL() << "should have thrown";
  } catch (const std::logic_error&) {
    FAIL() << "InfeasibleError must not derive from std::logic_error";
  } catch (const InfeasibleError&) {
    SUCCEED();
  }
}

TEST(Check, RequireMessageContainsExpressionAndLocation) {
  try {
    DEPSTOR_REQUIRE_MSG(1 > 2, "one exceeds two");
    FAIL() << "should have thrown";
  } catch (const InfeasibleError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("feasibility requirement"), std::string::npos) << what;
    EXPECT_NE(what.find("1 > 2"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("one exceeds two"), std::string::npos) << what;
  }
}

// --- the solver recovery boundary ---
//
// Structural impossibility must surface as InfeasibleError (so the search
// discards the candidate) and not as InvalidArgument/InternalError (which
// would mean a depstor bug) — and the design solver must catch it rather
// than let it escape a solve.

TEST(Check, OversizedDatasetThrowsInfeasibleNotGeneric) {
  Environment env = testing::peer_env(1);
  env.apps[0].data_size_gb = 1e9;  // beyond every Table 3 array
  env.validate();
  Candidate cand(&env);
  try {
    cand.place_app(0, testing::full_choice(testing::sync_f_backup()));
    FAIL() << "placement of an exabyte-scale dataset should be infeasible";
  } catch (const InfeasibleError&) {
    SUCCEED();
  } catch (const std::exception& e) {
    FAIL() << "wrong exception type escaped: " << e.what();
  }
}

TEST(Check, UnconnectedMirrorSitesThrowInfeasible) {
  const Environment env = testing::peer_env(1);
  Candidate cand(&env);
  DesignChoice choice = testing::full_choice(testing::sync_f_backup());
  choice.secondary_site = 2;  // site index past the two peers
  EXPECT_THROW(cand.place_app(0, choice), InfeasibleError);
}

TEST(Check, DesignSolverReportsInfeasibleInsteadOfThrowing) {
  Environment env = testing::peer_env(2);
  for (auto& app : env.apps) app.data_size_gb = 1e9;
  env.validate();
  DesignSolverOptions opts;
  opts.time_budget_ms = 500.0;
  opts.max_repetitions = 1;
  SolveResult result;
  EXPECT_NO_THROW(result = testing::solve_design(env, opts));
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.best.has_value());
}

}  // namespace
}  // namespace depstor
