// Regional disasters (§2.4): correlated failure of every site in a region.
#include <gtest/gtest.h>

#include "core/design_tool.hpp"
#include "model/recovery_plan.hpp"
#include "model/recovery_sim.hpp"
#include "solver/design_solver.hpp"
#include "test_helpers.hpp"

namespace depstor {
namespace {

using testing::full_choice;
using testing::sync_f_backup;

/// Four sites in two regions (0,1 → region 0; 2,3 → region 1), fully
/// connected, regional rate enabled.
Environment two_region_env(int apps, double regional_rate = 0.05) {
  Environment env = scenarios::multi_site(apps, 4, 8);
  env.topology.sites[0].region = 0;
  env.topology.sites[1].region = 0;
  env.topology.sites[2].region = 1;
  env.topology.sites[3].region = 1;
  env.failures.regional_disaster_rate = regional_rate;
  env.validate();
  return env;
}

TEST(Regional, PlacementFreeSurvivalIsConservative) {
  EXPECT_FALSE(level_survives(CopyLevel::Mirror,
                              FailureScope::RegionalDisaster));
  EXPECT_FALSE(level_survives(CopyLevel::Snapshot,
                              FailureScope::RegionalDisaster));
  EXPECT_FALSE(level_survives(CopyLevel::TapeBackup,
                              FailureScope::RegionalDisaster));
  EXPECT_TRUE(level_survives(CopyLevel::Vault,
                             FailureScope::RegionalDisaster));
}

TEST(Regional, CrossRegionMirrorSurvives) {
  Environment env = two_region_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup(), /*primary=*/0,
                                /*secondary=*/2));  // cross-region
  EXPECT_TRUE(level_survives(CopyLevel::Mirror,
                             FailureScope::RegionalDisaster,
                             cand.assignment(0), env.topology));
}

TEST(Regional, SameRegionMirrorDies) {
  Environment env = two_region_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup(), /*primary=*/0,
                                /*secondary=*/1));  // same region
  EXPECT_FALSE(level_survives(CopyLevel::Mirror,
                              FailureScope::RegionalDisaster,
                              cand.assignment(0), env.topology));
}

TEST(Regional, ScenarioEnumerationPerRegionWithPrimaries) {
  Environment env = two_region_env(2);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup(), 0, 2));
  cand.place_app(1, full_choice(sync_f_backup(), 2, 0));
  const auto scenarios = enumerate_scenarios(
      env.apps, cand.assignments(), cand.pool(), env.failures, true);
  int regional = 0;
  for (const auto& s : scenarios) {
    if (s.scope == FailureScope::RegionalDisaster) ++regional;
  }
  EXPECT_EQ(regional, 2);  // primaries in both regions
}

TEST(Regional, DisabledRateProducesNoScenarios) {
  Environment env = two_region_env(1, /*regional_rate=*/0.0);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup(), 0, 2));
  for (const auto& s : enumerate_scenarios(env.apps, cand.assignments(),
                                           cand.pool(), env.failures)) {
    EXPECT_NE(s.scope, FailureScope::RegionalDisaster);
  }
}

TEST(Regional, AffectedAppsCoverTheWholeRegion) {
  Environment env = two_region_env(3);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup(), 0, 2));  // region 0
  cand.place_app(1, full_choice(sync_f_backup(), 1, 3));  // region 0
  cand.place_app(2, full_choice(sync_f_backup(), 2, 0));  // region 1
  ScenarioSpec s;
  s.scope = FailureScope::RegionalDisaster;
  s.failed_region = 0;
  EXPECT_EQ(affected_apps(s, cand.assignments(), env.topology),
            (std::vector<int>{0, 1}));
}

TEST(Regional, FailoverToCrossRegionMirrorWorks) {
  Environment env = two_region_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup(), 0, 2));
  const auto plan = plan_recovery(env.app(0), cand.assignment(0), cand.pool(),
                                  FailureScope::RegionalDisaster, env.params);
  EXPECT_EQ(plan.action, RecoveryAction::Failover);
  EXPECT_EQ(plan.copy, CopyLevel::Mirror);
}

TEST(Regional, SameRegionMirrorFallsBackToVault) {
  Environment env = two_region_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup(), 0, 1));  // same region
  const auto plan = plan_recovery(env.app(0), cand.assignment(0), cand.pool(),
                                  FailureScope::RegionalDisaster, env.params);
  EXPECT_EQ(plan.copy, CopyLevel::Vault);
  EXPECT_EQ(plan.action, RecoveryAction::Reconstruct);
  EXPECT_DOUBLE_EQ(
      plan.lead_hours,
      env.params.repair_regional_hours + env.params.vault_retrieval_hours);
}

TEST(Regional, CrossRegionMirrorCheaperUnderRegionalThreat) {
  // Identical designs except for the mirror's region: under a nonzero
  // regional rate the cross-region placement must cost less.
  Environment env_same = two_region_env(1, 0.1);
  Environment env_cross = two_region_env(1, 0.1);
  Candidate same(&env_same);
  same.place_app(0, full_choice(sync_f_backup(), 0, 1));
  Candidate cross(&env_cross);
  cross.place_app(0, full_choice(sync_f_backup(), 0, 2));
  EXPECT_GT(same.evaluate().penalty(), cross.evaluate().penalty());
}

TEST(Regional, DesignToolPrefersCrossRegionMirrorsUnderThreat) {
  Environment env = two_region_env(4, /*regional_rate=*/0.2);
  DesignSolverOptions o;
  o.time_budget_ms = 1500.0;
  o.seed = 21;
  const auto result = testing::solve_design(env, o);
  ASSERT_TRUE(result.feasible);
  int cross_region_mirrors = 0;
  int mirrors = 0;
  for (const auto& asg : result.best->assignments()) {
    if (!asg.has_mirror()) continue;
    ++mirrors;
    if (env.topology.site(asg.primary_site).region !=
        env.topology.site(asg.secondary_site).region) {
      ++cross_region_mirrors;
    }
  }
  ASSERT_GT(mirrors, 0);
  // The loss-critical apps' mirrors must span regions; allow cheap apps to
  // stay local.
  EXPECT_GE(cross_region_mirrors * 2, mirrors);
  for (const auto& asg : result.best->assignments()) {
    const auto& app = env.app(asg.app_id);
    if (app.penalty_rate_sum() >= 6e6 && asg.has_mirror()) {
      EXPECT_NE(env.topology.site(asg.primary_site).region,
                env.topology.site(asg.secondary_site).region)
          << app.name << " left its mirror in-region under regional threat";
    }
  }
}

TEST(Regional, ToStringCoverage) {
  EXPECT_STREQ(to_string(FailureScope::RegionalDisaster),
               "regional-disaster");
}

}  // namespace
}  // namespace depstor
