// Remaining edge cases across modules.
#include <gtest/gtest.h>

#include "core/design_tool.hpp"
#include "core/report.hpp"
#include "model/recovery_sim.hpp"
#include "sim/monte_carlo.hpp"
#include "solver/parallel.hpp"
#include "test_helpers.hpp"
#include "util/histogram.hpp"

namespace depstor {
namespace {

using testing::full_choice;
using testing::peer_env;
using testing::sync_f_backup;
using testing::sync_r_backup;

TEST(EdgeCases, SpareOnlyCandidateHasOutlayButNoPenalty) {
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.set_spare_array(0, "MSA1500", true);
  const auto cost = cand.evaluate();
  EXPECT_GT(cost.outlay, 0.0);  // spare enclosure + site facilities
  EXPECT_DOUBLE_EQ(cost.penalty(), 0.0);  // nothing deployed to fail
}

TEST(EdgeCases, SpareArraysDoNotSpawnFailureScenarios) {
  // Array-failure scenarios exist per *primary-hosting* array; a spare must
  // not add one.
  Environment env = peer_env(1);
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_r_backup()));
  const auto before = enumerate_scenarios(env.apps, cand.assignments(),
                                          cand.pool(), env.failures);
  cand.set_spare_array(0, "EVA8000", true);
  const auto after = enumerate_scenarios(env.apps, cand.assignments(),
                                         cand.pool(), env.failures);
  EXPECT_EQ(before.size(), after.size());
}

TEST(EdgeCases, HistogramBinOfAtExactUpperEdgeClamps) {
  LogHistogram h(1.0, 100.0, 4);
  EXPECT_EQ(h.bin_of(100.0), 3u);   // exact hi → clamped to last bin
  EXPECT_EQ(h.bin_of(1000.0), 3u);  // beyond hi → clamped
  EXPECT_EQ(h.bin_of(0.5), 0u);     // below lo → clamped to first
}

TEST(EdgeCases, RngSplitIsDeterministic) {
  Rng a(77);
  Rng b(77);
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(child_a.uniform(), child_b.uniform());
  }
}

TEST(EdgeCases, HumanHeuristicHandlesRegionalEnvironments) {
  Environment env = scenarios::multi_site(8, 4, 8);
  env.topology.sites[2].region = 1;
  env.topology.sites[3].region = 1;
  env.failures.regional_disaster_rate = 0.05;
  env.validate();
  BaselineOptions o;
  o.time_budget_ms = 1000.0;
  o.seed = 3;
  const auto result = HumanHeuristic(&env, o).solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_NO_THROW(result.best->check_feasible());
}

TEST(EdgeCases, ParallelSolveSumsWorkerCounters) {
  DesignSolverOptions o;
  o.time_budget_ms = 60000.0;
  o.max_repetitions = 1;
  o.max_refit_iterations = 1;
  o.seed = 5;
  Environment env = peer_env(4);
  const auto merged = testing::solve_fanned(env, o, 2);
  // Run the two workers' seeds sequentially and compare counter sums.
  int nodes = 0;
  for (int k = 0; k < 2; ++k) {
    Environment env_k = peer_env(4);
    DesignSolverOptions ok = o;
    ok.seed = o.seed + static_cast<std::uint64_t>(k);
    nodes += testing::solve_design(env_k, ok).nodes_evaluated;
  }
  EXPECT_EQ(merged.nodes_evaluated, nodes);
}

TEST(EdgeCases, MonteCarloSnapshotLossBoundedByInterval) {
  // Every sampled object-failure loss for a snapshot-revert design lies in
  // [0, snapshot interval]; with many events the per-app mean must sit near
  // interval/2.
  Environment env = testing::tiny_env(workload::consumer_banking());
  env.failures.disk_array_rate = 0.0;
  env.failures.site_disaster_rate = 0.0;
  env.failures.data_object_rate = 4.0;  // many events
  Candidate cand(&env);
  cand.place_app(0, full_choice(sync_f_backup()));
  const double interval = cand.assignment(0).backup.snapshot_interval_hours;
  MonteCarloSimulator sim(&env);
  const auto result = sim.run(cand, {.years = 500.0, .seed = 9});
  ASSERT_GT(result.per_app[0].failure_events, 1000);
  const double mean_loss =
      result.per_app[0].loss_hours /
      static_cast<double>(result.per_app[0].failure_events);
  EXPECT_GT(mean_loss, interval * 0.4);
  EXPECT_LT(mean_loss, interval * 0.6);
}

TEST(EdgeCases, RecoveryReportOnBackupOnlyDesign) {
  Environment env = testing::tiny_env(workload::student_accounts());
  Candidate cand(&env);
  cand.place_app(0, full_choice(testing::backup_only()));
  const std::string report = recovery_report(env, cand);
  EXPECT_NE(report.find("tape-backup"), std::string::npos);
  EXPECT_NE(report.find("vault"), std::string::npos);
}

TEST(EdgeCases, EvaluateUnderSweepsAllScopesIndependently) {
  Environment env = peer_env(2);
  DesignTool tool(env);
  Candidate cand(&tool.env());
  cand.place_app(0, full_choice(sync_f_backup()));
  cand.place_app(1, full_choice(sync_r_backup()));
  FailureModel only_object;
  only_object.data_object_rate = 1.0;
  only_object.disk_array_rate = 0.0;
  only_object.site_disaster_rate = 0.0;
  FailureModel only_site;
  only_site.data_object_rate = 0.0;
  only_site.disk_array_rate = 0.0;
  only_site.site_disaster_rate = 1.0;
  const auto obj = tool.evaluate_under(cand, only_object);
  const auto site = tool.evaluate_under(cand, only_site);
  EXPECT_GT(obj.penalty(), 0.0);
  EXPECT_GT(site.penalty(), 0.0);
  EXPECT_NE(obj.penalty(), site.penalty());
  EXPECT_DOUBLE_EQ(obj.outlay, site.outlay);  // outlay is rate-independent
}

TEST(EdgeCases, TinyTimeBudgetStillReturnsSomething) {
  // Even a ~1 ms budget must yield a well-formed result (feasible or not),
  // never a crash or a corrupt candidate.
  Environment env = peer_env(4);
  DesignSolverOptions o;
  o.time_budget_ms = 1.0;
  o.seed = 2;
  const auto result = testing::solve_design(env, o);
  if (result.feasible) {
    EXPECT_NO_THROW(result.best->check_feasible());
  } else {
    EXPECT_FALSE(result.best.has_value());
  }
}

}  // namespace
}  // namespace depstor
