// Warm-start re-design (core/env_delta.hpp + depstor::resolve): delta
// validation, solution migration, and the cross-solve cache-correctness
// contract — warm totals must be bit-identical to a cold (incremental-off)
// re-evaluation of the same design, including over a long randomized churn
// of adds/removes/resizes.
#include "core/api.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "engine/eval_cache.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace depstor {
namespace {

using testing::peer_env;

// The warm path's internal oracle (audit_warm_totals) only arms under
// DEPSTOR_AUDIT; set it before the first solve so debug_audit_enabled()'s
// cached read sees it in release builds too.
const bool kAuditArmed = [] {
  ::setenv("DEPSTOR_AUDIT", "1", 1);
  return true;
}();

DesignSolverOptions fast_options(std::uint64_t seed = 1) {
  DesignSolverOptions options;
  options.seed = seed;
  options.breadth = 2;
  options.depth = 2;
  options.max_refit_iterations = 2;
  options.max_greedy_restarts = 5;
  options.max_repetitions = 1;
  return options;
}

ExecutionOptions det_exec() {
  ExecutionOptions exec;
  exec.deterministic = true;
  return exec;
}

/// Cold re-evaluation of a result's design: incremental evaluator off, no
/// cache — the ground truth the warm path must reproduce exactly.
void expect_cold_totals_match(const SolveResult& result) {
  ASSERT_TRUE(result.feasible);
  Candidate fresh = *result.best;
  fresh.set_incremental_enabled(false);
  const CostBreakdown full = fresh.evaluate();
  EXPECT_EQ(full.outlay, result.cost.outlay);
  EXPECT_EQ(full.outage_penalty, result.cost.outage_penalty);
  EXPECT_EQ(full.loss_penalty, result.cost.loss_penalty);
}

// ---------------------------------------------------------------------------
// apply_delta validation
// ---------------------------------------------------------------------------

TEST(ApplyDelta, SurvivorsKeepOrderAndAdditionsAppend) {
  const Environment prev = peer_env(4);
  EnvDelta delta;
  delta.remove = {prev.apps[1].name};
  ApplicationSpec added = prev.apps[0];
  added.name = "fresh-app";
  delta.add = {added};

  const DeltaPlan plan = apply_delta(prev, delta);
  ASSERT_EQ(plan.env.apps.size(), 4u);
  EXPECT_EQ(plan.env.apps[0].name, prev.apps[0].name);
  EXPECT_EQ(plan.env.apps[1].name, prev.apps[2].name);
  EXPECT_EQ(plan.env.apps[2].name, prev.apps[3].name);
  EXPECT_EQ(plan.env.apps[3].name, "fresh-app");
  EXPECT_EQ(plan.new_of_old, (std::vector<int>{0, -1, 1, 2}));
  EXPECT_EQ(plan.added_apps, (std::vector<int>{3}));
  EXPECT_TRUE(plan.resized_apps.empty());
}

TEST(ApplyDelta, ResizeSwapsSpecInPlace) {
  const Environment prev = peer_env(3);
  EnvDelta delta;
  ApplicationSpec bigger = prev.apps[2];
  bigger.data_size_gb *= 1.5;
  delta.resize = {bigger};

  const DeltaPlan plan = apply_delta(prev, delta);
  ASSERT_EQ(plan.env.apps.size(), 3u);
  EXPECT_EQ(plan.resized_apps, (std::vector<int>{2}));
  EXPECT_DOUBLE_EQ(plan.env.apps[2].data_size_gb, bigger.data_size_gb);
  EXPECT_EQ(plan.new_of_old, (std::vector<int>{0, 1, 2}));
}

TEST(ApplyDelta, SiteCapacityChangeByName) {
  const Environment prev = peer_env(2);
  EnvDelta delta;
  SiteCapacityChange change;
  change.site = prev.topology.site(1).name;
  change.max_disk_arrays = 4;
  delta.site_changes = {change};

  const DeltaPlan plan = apply_delta(prev, delta);
  EXPECT_EQ(plan.env.topology.site(1).max_disk_arrays, 4);
  EXPECT_EQ(plan.changed_sites, (std::vector<int>{1}));
}

TEST(ApplyDelta, RejectsUnknownRemove) {
  const Environment prev = peer_env(2);
  EnvDelta delta;
  delta.remove = {"no-such-app"};
  EXPECT_THROW(apply_delta(prev, delta), InvalidArgument);
}

TEST(ApplyDelta, RejectsResizePastPoolCapacity) {
  const Environment prev = peer_env(2);
  EnvDelta delta;
  ApplicationSpec huge = prev.apps[0];
  huge.data_size_gb = 1e9;
  delta.resize = {huge};
  try {
    apply_delta(prev, delta);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("resize past pool capacity"),
              std::string::npos);
  }
}

TEST(ApplyDelta, RejectsRemoveAndResizeOfSameApp) {
  const Environment prev = peer_env(2);
  EnvDelta delta;
  delta.remove = {prev.apps[0].name};
  delta.resize = {prev.apps[0]};
  EXPECT_THROW(apply_delta(prev, delta), InvalidArgument);
}

TEST(ApplyDelta, RejectsDuplicateAdd) {
  const Environment prev = peer_env(2);
  EnvDelta delta;
  ApplicationSpec a = prev.apps[0];
  a.name = "twin";
  delta.add = {a, a};
  EXPECT_THROW(apply_delta(prev, delta), InvalidArgument);
}

TEST(ApplyDelta, RejectsAddOfExistingName) {
  const Environment prev = peer_env(2);
  EnvDelta delta;
  delta.add = {prev.apps[1]};
  EXPECT_THROW(apply_delta(prev, delta), InvalidArgument);
}

TEST(ApplyDelta, RejectsUnknownOrNegativeSiteChange) {
  const Environment prev = peer_env(2);
  EnvDelta unknown;
  unknown.site_changes = {{"atlantis", std::nullopt, std::nullopt,
                           std::nullopt, std::nullopt}};
  EXPECT_THROW(apply_delta(prev, unknown), InvalidArgument);

  EnvDelta negative;
  SiteCapacityChange change;
  change.site = prev.topology.site(0).name;
  change.max_tape_libraries = -1;
  negative.site_changes = {change};
  EXPECT_THROW(apply_delta(prev, negative), InvalidArgument);
}

// ---------------------------------------------------------------------------
// diff_environments
// ---------------------------------------------------------------------------

TEST(DiffEnvironments, RoundTripsAnAppliedDelta) {
  const Environment prev = peer_env(4);
  EnvDelta delta;
  delta.remove = {prev.apps[0].name};
  ApplicationSpec resized = prev.apps[2];
  resized.data_size_gb *= 0.5;
  delta.resize = {resized};
  ApplicationSpec added = prev.apps[3];
  added.name = "newcomer";
  delta.add = {added};
  SiteCapacityChange change;
  change.site = prev.topology.site(0).name;
  change.max_spare_arrays = 3;
  delta.site_changes = {change};

  const DeltaPlan plan = apply_delta(prev, delta);
  const EnvDelta recovered = diff_environments(prev, plan.env);
  ASSERT_EQ(recovered.remove, delta.remove);
  ASSERT_EQ(recovered.add.size(), 1u);
  EXPECT_EQ(recovered.add[0].name, "newcomer");
  ASSERT_EQ(recovered.resize.size(), 1u);
  EXPECT_EQ(recovered.resize[0].name, prev.apps[2].name);
  EXPECT_DOUBLE_EQ(recovered.resize[0].data_size_gb, resized.data_size_gb);
  ASSERT_EQ(recovered.site_changes.size(), 1u);
  EXPECT_EQ(recovered.site_changes[0].site, change.site);
  ASSERT_TRUE(recovered.site_changes[0].max_spare_arrays.has_value());
  EXPECT_EQ(*recovered.site_changes[0].max_spare_arrays, 3);

  // Applying the recovered delta reproduces the successor exactly.
  const DeltaPlan replay = apply_delta(prev, recovered);
  EXPECT_EQ(fingerprint_environment(replay.env),
            fingerprint_environment(plan.env));
}

TEST(DiffEnvironments, RejectsNonDeltaChanges) {
  const Environment prev = peer_env(2);
  Environment next = prev;
  next.failures.disk_array_rate *= 2.0;
  EXPECT_THROW(diff_environments(prev, next), InvalidArgument);

  Environment reordered = prev;
  std::swap(reordered.apps[0], reordered.apps[1]);
  workload::assign_ids(reordered.apps);
  EXPECT_THROW(diff_environments(prev, reordered), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Candidate::migrate
// ---------------------------------------------------------------------------

TEST(Migrate, CarriesSurvivorsAndTotalsExactly) {
  auto prev_env = std::make_shared<const Environment>(peer_env(4));
  SolveRequest cold;
  cold.env = prev_env.get();
  cold.options = fast_options();
  cold.exec = det_exec();
  const SolveResult seed_result = solve(cold);
  ASSERT_TRUE(seed_result.feasible);

  EnvDelta delta;
  delta.remove = {prev_env->apps[1].name};
  DeltaPlan plan = apply_delta(*prev_env, delta);
  auto next_env = std::make_shared<const Environment>(std::move(plan.env));

  Candidate migrated = *seed_result.best;
  migrated.migrate(next_env.get(), plan.new_of_old);
  EXPECT_EQ(&migrated.env(), next_env.get());
  // Survivors keep their assignments under the new ids.
  for (std::size_t old_id = 0; old_id < plan.new_of_old.size(); ++old_id) {
    const int new_id = plan.new_of_old[old_id];
    if (new_id < 0) continue;
    EXPECT_EQ(migrated.is_assigned(new_id),
              seed_result.best->is_assigned(static_cast<int>(old_id)));
  }
  EXPECT_NO_THROW(migrated.check_feasible());

  // The migrated incremental state must price the design exactly like a
  // from-scratch evaluation on the successor environment.
  const CostBreakdown warm_cost = migrated.evaluate();
  Candidate fresh = migrated;
  fresh.set_incremental_enabled(false);
  const CostBreakdown cold_cost = fresh.evaluate();
  EXPECT_EQ(warm_cost.outlay, cold_cost.outlay);
  EXPECT_EQ(warm_cost.outage_penalty, cold_cost.outage_penalty);
  EXPECT_EQ(warm_cost.loss_penalty, cold_cost.loss_penalty);
}

// ---------------------------------------------------------------------------
// depstor::resolve
// ---------------------------------------------------------------------------

TEST(Resolve, EmptyDeltaKeepsThePriorDesign) {
  auto prev_env = std::make_shared<const Environment>(peer_env(4));
  SolveRequest cold;
  cold.env = prev_env.get();
  cold.options = fast_options();
  cold.exec = det_exec();
  const SolveResult prior = solve(cold);
  ASSERT_TRUE(prior.feasible);

  ResolveRequest request;
  request.prev_env = prev_env.get();
  request.prev_solution = &*prior.best;
  request.options = fast_options();
  request.exec = det_exec();
  const ResolveResult out = resolve(request);
  ASSERT_TRUE(out.result.feasible);
  EXPECT_TRUE(out.warm);
  EXPECT_EQ(out.touched_apps, 0);
  // Nothing changed, nothing touched: the design and its totals carry over
  // bit-for-bit.
  EXPECT_EQ(out.result.cost.total(), prior.cost.total());
  expect_cold_totals_match(out.result);
}

TEST(Resolve, WarmHandlesAddRemoveResize) {
  auto prev_env = std::make_shared<const Environment>(peer_env(5));
  SolveRequest cold;
  cold.env = prev_env.get();
  cold.options = fast_options();
  cold.exec = det_exec();
  const SolveResult prior = solve(cold);
  ASSERT_TRUE(prior.feasible);

  EnvDelta delta;
  delta.remove = {prev_env->apps[0].name};
  ApplicationSpec resized = prev_env->apps[3];
  resized.data_size_gb *= 1.25;
  delta.resize = {resized};
  ApplicationSpec added = prev_env->apps[2];
  added.name = "arrival";
  delta.add = {added};

  ResolveRequest request;
  request.prev_env = prev_env.get();
  request.prev_solution = &*prior.best;
  request.delta = delta;
  request.options = fast_options();
  request.exec = det_exec();
  const ResolveResult out = resolve(request);
  ASSERT_TRUE(out.result.feasible);
  EXPECT_TRUE(out.warm);
  EXPECT_GE(out.touched_apps, 2);  // at least the added + resized apps
  EXPECT_EQ(static_cast<int>(out.env->apps.size()), 5);
  expect_cold_totals_match(out.result);
}

TEST(Resolve, FallsBackToColdWhenTheDeltaBreaksTheSeed) {
  auto prev_env = std::make_shared<const Environment>(peer_env(4));
  SolveRequest cold;
  cold.env = prev_env.get();
  cold.options = fast_options();
  cold.exec = det_exec();
  const SolveResult prior = solve(cold);
  ASSERT_TRUE(prior.feasible);

  // Claw back every disk array at both sites: whatever the prior layout
  // used, the migrated seed cannot be feasible, so resolve must fall back.
  EnvDelta delta;
  for (const auto& site : prev_env->topology.sites) {
    SiteCapacityChange change;
    change.site = site.name;
    change.max_disk_arrays = 0;
    change.max_spare_arrays = 0;
    delta.site_changes.push_back(change);
  }

  ResolveRequest request;
  request.prev_env = prev_env.get();
  request.prev_solution = &*prior.best;
  request.delta = delta;
  request.options = fast_options();
  request.exec = det_exec();
  const ResolveResult out = resolve(request);
  EXPECT_FALSE(out.warm);  // the cold path answered (feasible or not)
}

TEST(Resolve, RejectsMalformedRequests) {
  auto prev_env = std::make_shared<const Environment>(peer_env(2));
  SolveRequest cold;
  cold.env = prev_env.get();
  cold.options = fast_options();
  cold.exec = det_exec();
  const SolveResult prior = solve(cold);
  ASSERT_TRUE(prior.feasible);

  ResolveRequest request;
  request.prev_env = prev_env.get();
  request.prev_solution = &*prior.best;
  request.options = fast_options();
  request.exec = det_exec();
  request.exec.workers = 4;  // warm solves are single-search by contract
  EXPECT_THROW(resolve(request), InvalidArgument);

  ResolveRequest null_prev;
  null_prev.prev_env = prev_env.get();
  EXPECT_THROW(resolve(null_prev), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Randomized churn oracle
// ---------------------------------------------------------------------------

// 100 steps of random adds/removes/resizes, every step warm-started from the
// last and cross-checked against a cold evaluation. With DEPSTOR_AUDIT armed
// (above), resolve() additionally runs its internal bit-identical totals
// oracle on every warm result.
TEST(Resolve, ChurnOracleHundredSteps) {
  auto cur_env = std::make_shared<const Environment>(peer_env(6));
  SolveRequest cold;
  cold.env = cur_env.get();
  cold.options = fast_options();
  cold.exec = det_exec();
  SolveResult first = solve(cold);
  ASSERT_TRUE(first.feasible);
  std::optional<Candidate> cur_best = std::move(first.best);

  std::mt19937 rng(20060625);  // the paper's conference date as a seed
  int warm_steps = 0;
  int next_name = 0;
  for (int step = 0; step < 100; ++step) {
    const int app_count = static_cast<int>(cur_env->apps.size());
    EnvDelta delta;
    const int op = static_cast<int>(rng() % 3);
    if (op == 0 && app_count < 10) {
      ApplicationSpec added =
          cur_env->apps[rng() % cur_env->apps.size()];
      added.name = "churn-" + std::to_string(next_name++);
      delta.add = {added};
    } else if (op == 1 && app_count > 3) {
      delta.remove = {cur_env->apps[rng() % cur_env->apps.size()].name};
    } else {
      ApplicationSpec resized =
          cur_env->apps[rng() % cur_env->apps.size()];
      const double scale = 0.7 + 0.6 * (static_cast<double>(rng() % 1000) /
                                        1000.0);
      resized.data_size_gb =
          std::min(2000.0, std::max(50.0, resized.data_size_gb * scale));
      delta.resize = {resized};
    }

    ResolveRequest request;
    request.prev_env = cur_env.get();
    request.prev_solution = &*cur_best;
    request.delta = delta;
    request.options = fast_options(static_cast<std::uint64_t>(step + 1));
    request.exec = det_exec();
    ResolveResult out = resolve(request);
    ASSERT_TRUE(out.result.feasible) << "step " << step;
    expect_cold_totals_match(out.result);
    if (out.warm) ++warm_steps;

    cur_env = out.env;
    cur_best = std::move(out.result.best);
  }
  // Single-app deltas on a healthy environment should warm-start nearly
  // always; a majority bar catches a systematically broken warm path while
  // tolerating occasional legitimate cold fallbacks.
  EXPECT_GE(warm_steps, 50);
}

}  // namespace
}  // namespace depstor
