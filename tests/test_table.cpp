#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace depstor {
namespace {

TEST(Table, RejectsEmptyHeaderAndMismatchedRow) {
  EXPECT_THROW(Table({}), InvalidArgument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
}

TEST(Table, RenderAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.render();
  // Split into lines and check the second column starts at the same offset
  // in the header and in both rows.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const auto nl = out.find('\n', pos);
    lines.push_back(out.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u);  // header, rule, 2 rows
  const auto col = lines[0].find("value");
  ASSERT_NE(col, std::string::npos);
  EXPECT_EQ(lines[2].find('1'), col);
  EXPECT_EQ(lines[3].find("22"), col);
}

TEST(Table, RenderContainsRule) {
  Table t({"h"});
  t.add_row({"v"});
  EXPECT_NE(t.render().find("-"), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a", "b"});
  t.add_row({"has,comma", "has\"quote"});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table t({"a"});
  t.add_row({"plain"});
  EXPECT_EQ(t.render_csv(), "a\nplain\n");
}

TEST(TableFormat, MoneyScalesUnits) {
  EXPECT_EQ(Table::money(950.0), "$950");
  EXPECT_EQ(Table::money(5000.0), "$5K");
  EXPECT_EQ(Table::money(5'000'000.0), "$5M");
  EXPECT_EQ(Table::money(2'400'000'000.0), "$2.4B");
}

TEST(TableFormat, MoneyHandlesNegative) {
  EXPECT_EQ(Table::money(-5000.0), "$-5K");
}

TEST(TableFormat, NumPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
}

TEST(TableFormat, HoursPicksNaturalUnit) {
  EXPECT_EQ(Table::hours(0.002), "7.2 s");
  EXPECT_EQ(Table::hours(0.5), "30.0 min");
  EXPECT_EQ(Table::hours(5.25), "5.25 h");
  EXPECT_EQ(Table::hours(72.0), "3.0 d");
}

TEST(TableFormat, YesNo) {
  EXPECT_EQ(Table::yes_no(true), "yes");
  EXPECT_EQ(Table::yes_no(false), "-");
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace depstor
