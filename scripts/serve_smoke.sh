#!/usr/bin/env bash
# End-to-end smoke of the design service binaries (CI's serve-smoke job,
# also runnable locally):
#
#   scripts/serve_smoke.sh <build-dir>
#
# Launches depstor_serve on a fixed loopback port and drives it with
# depstor_request through the full admission matrix — one normal design
# request (must complete), one cancelled mid-run (must report "cancelled"),
# one rejected deterministically by the lint layer (must report 422) — then
# validates the /stats snapshot against the outcomes and asserts a clean
# SIGTERM drain (exit 0 plus the drained message). Any deviation exits
# non-zero. The depstor_request exit-code contract is documented in
# examples/depstor_request.cpp.
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/examples/depstor_serve"
REQUEST="$BUILD_DIR/examples/depstor_request"
PORT="${DEPSTOR_SERVE_PORT:-7421}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"; [ -n "${SERVE_PID:-}" ] && kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT

[ -x "$SERVE" ] || { echo "missing $SERVE (build the examples first)"; exit 1; }
[ -x "$REQUEST" ] || { echo "missing $REQUEST"; exit 1; }

# The two-app east/west environment from tests/test_env_loader.cpp.
cat > "$WORKDIR/good.ini" <<'EOF'
[site]
name = east

[site]
name = west
region = 1

[link]
a = east
b = west
max_links = 12

[application]
name = billing
outage_penalty_rate = 2e6
loss_penalty_rate = 8e6
data_size_gb = 900
avg_update_mbps = 3
peak_update_mbps = 25
avg_access_mbps = 30

[application]
name = wiki
outage_penalty_rate = 2e3
loss_penalty_rate = 8e3
data_size_gb = 200
avg_update_mbps = 0.2

[failures]
data_object_rate = 1.0
regional_disaster_rate = 0.02
EOF

# An application with no site to live on: a deterministic lint rejection.
cat > "$WORKDIR/bad.ini" <<'EOF'
[application]
name = orphan
outage_penalty_rate = 1e3
loss_penalty_rate = 1e3
data_size_gb = 10
avg_update_mbps = 0.1
EOF

echo "== launching depstor_serve on port $PORT =="
"$SERVE" --port="$PORT" --workers=2 --stats-out="$WORKDIR/final_stats.json" \
  > "$WORKDIR/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 50); do
  grep -q "listening" "$WORKDIR/serve.log" 2>/dev/null && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORKDIR/serve.log"; exit 1; }
  sleep 0.1
done
grep -q "listening" "$WORKDIR/serve.log" || { cat "$WORKDIR/serve.log"; exit 1; }

echo "== request 1: normal design (expect completed, exit 0) =="
"$REQUEST" --port="$PORT" --env="$WORKDIR/good.ini" --deterministic --quiet

echo "== request 2: cancelled mid-run (expect cancelled, exit 3) =="
rc=0
"$REQUEST" --port="$PORT" --env="$WORKDIR/good.ini" --id=cancel-me \
  --time-budget-ms=60000 --cancel-after-ms=30 --quiet || rc=$?
[ "$rc" -eq 3 ] || { echo "expected exit 3 (cancelled), got $rc"; exit 1; }

echo "== request 3: lint rejection (expect rejected, exit 4) =="
rc=0
"$REQUEST" --port="$PORT" --env="$WORKDIR/bad.ini" --quiet || rc=$?
[ "$rc" -eq 4 ] || { echo "expected exit 4 (rejected), got $rc"; exit 1; }

echo "== stats snapshot reflects the outcomes =="
"$REQUEST" --port="$PORT" --stats | tee "$WORKDIR/stats.txt"
grep -q "jobs_completed=1" "$WORKDIR/stats.txt"
grep -q "jobs_admitted=2" "$WORKDIR/stats.txt"
grep -q "jobs_rejected=1" "$WORKDIR/stats.txt"

echo "== SIGTERM: graceful drain =="
kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
[ "$rc" -eq 0 ] || { echo "depstor_serve exited $rc"; cat "$WORKDIR/serve.log"; exit 1; }
grep -q "drained cleanly" "$WORKDIR/serve.log" || { cat "$WORKDIR/serve.log"; exit 1; }
SERVE_PID=""

echo "== final stats file is valid JSON with the right counters =="
python3 - "$WORKDIR/final_stats.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["type"] == "stats", doc
srv = doc["server"]
assert srv["jobs_admitted"] == 2, srv
assert srv["jobs_completed"] == 1, srv
assert srv["jobs_cancelled"] == 1, srv
assert srv["jobs_rejected"] == 1, srv
assert srv["queue_depth"] == 0 and srv["active_jobs"] == 0, srv
counters = doc["obs"]["counters"]
assert counters["serve.jobs_admitted"] == 2, counters
assert counters["serve.rejected_lint"] == 1, counters
print("final stats OK:", {k: srv[k] for k in
      ("jobs_admitted", "jobs_completed", "jobs_cancelled", "jobs_rejected")})
EOF

echo "serve smoke: all checks passed"
