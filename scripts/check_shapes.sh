#!/usr/bin/env bash
# Shape regression guard: assert the paper's qualitative results hold in a
# bench_output.txt produced by scripts/run_experiments.sh.
#
#   scripts/check_shapes.sh [bench_output.txt]
#
# Checks shapes, not absolute dollars (see EXPERIMENTS.md): who wins, which
# behaviors appear, which curves stay flat.
set -uo pipefail

FILE="${1:-bench_output.txt}"
[ -f "$FILE" ] || { echo "no such file: $FILE" >&2; exit 2; }

failures=0
check() {  # check <description> <grep-pattern>
  if grep -qE "$2" "$FILE"; then
    echo "ok   $1"
  else
    echo "FAIL $1   (missing: $2)"
    failures=$((failures + 1))
  fi
}

# Table 4 (§4.3.2): failover for every high-outage app; backup everywhere.
check "high-outage apps all use failover"   "high-outage apps using failover: ([0-9]+)/\1"
check "every app carries tape backup"       "apps with tape backup: ([0-9]+)/\1"

# Figure 2 (§4.3.1): order-of-magnitude spread; tool in the lowest percentile.
check "solution-space spread exceeds 10x"   "spread: x[0-9]{2,}"
check "tool lands in percentile 0"          "percentile 0\.0[0-9]% of the sampled space"

# Figure 3: the design tool is the 1.00x baseline and both heuristics cost more.
check "design tool is the cheapest (fig 3)" "design tool .*x1\.00"
check "human heuristic costs more (fig 3)"  "human heuristic .*x([2-9]|[1-9][0-9])\."

# Figure 4: the tool leads by >2x at 8..20 apps (any such row suffices).
check "tool leads by >2x at scale (fig 4)"  "^(8|12|16|20) .*x([2-9]|[1-9][0-9]+)\.[0-9]+ *$"

# Figures 5-7: headers present; flatness of 6/7 is asserted via EXPERIMENTS.
check "figure 5 sweep ran"                  "sensitivity to data object failure"
check "figure 6 sweep ran"                  "sensitivity to disk array failure"
check "figure 7 sweep ran"                  "sensitivity to site disaster"

# Monte Carlo validation: outage ~ x1.0x, loss ~ x0.4-0.6 of the bound.
check "MC outage matches analytic"          "annual outage penalty .*x(0\.9[0-9]|1\.0[0-9])"
check "MC loss within the worst-case bound" "annual loss penalty .*x0\.[4-6][0-9]?"

# Ablations: the full solver is the baseline; priority ordering appears.
check "solver ablation baseline present"    "full .*x1\.00"
check "recovery-order ablation ran"         "priority-penalty"
check "backup-cycle ablation picks incrementals somewhere" "full\+incrementals"

if [ "$failures" -gt 0 ]; then
  echo; echo "$failures shape check(s) FAILED" >&2
  exit 1
fi
echo; echo "all shape checks passed"
