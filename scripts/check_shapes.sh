#!/usr/bin/env bash
# Shape regression guard: assert the paper's qualitative results hold in a
# bench_output.txt produced by scripts/run_experiments.sh.
#
#   scripts/check_shapes.sh [bench_output.txt]
#   scripts/check_shapes.sh --lint
#
# Checks shapes, not absolute dollars (see EXPERIMENTS.md): who wins, which
# behaviors appear, which curves stay flat. With --lint it instead runs the
# depstor_lint static checker over every environment under
# examples/environments/ (set BUILD_DIR to point at a non-default build).
set -uo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"

if [ "${1:-}" = "--lint" ]; then
  LINT="$BUILD_DIR/examples/depstor_lint"
  if [ ! -x "$LINT" ]; then
    echo "error: depstor_lint binary not found at $LINT" >&2
    echo "build it first:  cmake -B '$BUILD_DIR' -S '$REPO_ROOT' && cmake --build '$BUILD_DIR' -j --target depstor_lint" >&2
    echo "(or set BUILD_DIR to the build tree that has it)" >&2
    exit 2
  fi
  ENV_DIR="$REPO_ROOT/examples/environments"
  envs=("$ENV_DIR"/*.ini)
  if [ ! -e "${envs[0]}" ]; then
    echo "error: no environment files under $ENV_DIR" >&2
    exit 2
  fi
  echo "linting ${#envs[@]} environment(s) under $ENV_DIR"
  "$LINT" "${envs[@]}"
  exit $?
fi

FILE="${1:-bench_output.txt}"
if [ ! -f "$FILE" ]; then
  echo "error: expected experiment artifact '$FILE' is missing" >&2
  echo "generate it with:  scripts/run_experiments.sh > '$FILE'" >&2
  echo "(or pass the path to an existing bench output as the first argument)" >&2
  exit 2
fi

failures=0
check() {  # check <description> <grep-pattern>
  if grep -qE "$2" "$FILE"; then
    echo "ok   $1"
  else
    echo "FAIL $1   (missing: $2)"
    failures=$((failures + 1))
  fi
}

# Table 4 (§4.3.2): failover for every high-outage app; backup everywhere.
check "high-outage apps all use failover"   "high-outage apps using failover: ([0-9]+)/\1"
check "every app carries tape backup"       "apps with tape backup: ([0-9]+)/\1"

# Figure 2 (§4.3.1): order-of-magnitude spread; tool in the lowest percentile.
check "solution-space spread exceeds 10x"   "spread: x[0-9]{2,}"
check "tool lands in percentile 0"          "percentile 0\.0[0-9]% of the sampled space"

# Figure 3: the design tool is the 1.00x baseline and both heuristics cost more.
check "design tool is the cheapest (fig 3)" "design tool .*x1\.00"
check "human heuristic costs more (fig 3)"  "human heuristic .*x([2-9]|[1-9][0-9])\."

# Figure 4: the tool leads by >2x at 8..20 apps (any such row suffices).
check "tool leads by >2x at scale (fig 4)"  "^(8|12|16|20) .*x([2-9]|[1-9][0-9]+)\.[0-9]+ *$"

# Figures 5-7: headers present; flatness of 6/7 is asserted via EXPERIMENTS.
check "figure 5 sweep ran"                  "sensitivity to data object failure"
check "figure 6 sweep ran"                  "sensitivity to disk array failure"
check "figure 7 sweep ran"                  "sensitivity to site disaster"

# Monte Carlo validation: outage ~ x1.0x, loss ~ x0.4-0.6 of the bound.
check "MC outage matches analytic"          "annual outage penalty .*x(0\.9[0-9]|1\.0[0-9])"
check "MC loss within the worst-case bound" "annual loss penalty .*x0\.[4-6][0-9]?"

# Ablations: the full solver is the baseline; priority ordering appears.
check "solver ablation baseline present"    "full .*x1\.00"
check "recovery-order ablation ran"         "priority-penalty"
check "backup-cycle ablation picks incrementals somewhere" "full\+incrementals"

if [ "$failures" -gt 0 ]; then
  echo; echo "$failures shape check(s) FAILED" >&2
  exit 1
fi
echo; echo "all shape checks passed"
