#!/usr/bin/env python3
"""CI perf gate over BENCH_solver_perf.json.

Fails (exit 1) when:
  * any field this gate reads is missing from the JSON — a stale or
    truncated artifact must not pass silently;
  * `totals_match` is false on the parallel-refit probe or any scale probe
    (the bit-identical determinism contract, enforced unconditionally);
  * `totals_match` is false on the churn probe (warm-start totals must
    equal a cache-free re-evaluation bit for bit — the cross-solve
    cache-correctness contract, enforced unconditionally), or warm
    `resolve` fails to beat a cold from-scratch solve by the 5x floor on
    small deltas (the churn probe's deltas touch at most 4 of 24 apps per
    step, so the floor is algorithmic and applies on any hardware);
  * the serve probe dropped or rejected any request;
  * `totals_match` is false on the correlation probe (the degenerate
    failure-domain tree must price bit-identically to the flat model —
    enforced unconditionally), or the tree-model evaluation overhead
    exceeds 1.15x the flat path on the 24-app environment;
  * on a capable host only (hardware_threads >= intra_workers): the
    forced-fan speedup at 4 workers falls below the gate floor (1.8x —
    below the 2.0x local bar to absorb CI-runner noise), or speedup fails
    to grow with environment size across the scale probes.

Wall-clock speedup assertions are keyed off the recorded
`hardware_threads`: a runner with fewer cores than workers physically
cannot show parallel speedup, so there the gate checks correctness
(totals, field presence, counters) and skips the timing floor rather than
failing on hardware the benchmark never claimed to cover.

Usage: perf_gate.py [BENCH_solver_perf.json]
"""

import json
import sys

SPEEDUP_FLOOR = 1.8
# Warm-vs-cold floor for the churn probe. The advantage is algorithmic (a
# warm solve re-designs only the touched apps instead of the whole
# environment), so unlike the intra-parallel floors it is enforced
# regardless of hardware_threads — but only while the probe's deltas stay
# small relative to the environment (<= 4 touched apps per step on the
# 24-app base), which is the regime the warm path promises to win in.
CHURN_SPEEDUP_FLOOR = 5.0
CHURN_SMALL_DELTA_APPS_PER_STEP = 4
# Scale probes may jitter a few percent run to run; "grows with scale"
# tolerates that without letting a real regression through.
SCALE_TOLERANCE = 0.05
# Ceiling on degenerate-tree evaluation time relative to the flat path.
# The tree walk adds a correlation-chain product and a node indirection per
# scenario; that must stay in the noise, not become a tax on every solve.
CORRELATION_OVERHEAD_CEILING = 1.15


def require(obj, path, key):
    """Fetch obj[key], failing loudly when the field is absent."""
    if isinstance(obj, dict) and key in obj:
        return obj[key]
    raise SystemExit(f"perf gate: {path}.{key} missing from the JSON "
                     "(stale or truncated artifact?)")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_solver_perf.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        raise SystemExit(f"perf gate: cannot read {path}: {e}")

    failures = []
    hardware = int(require(doc, "$", "hardware_threads"))

    refit = require(doc, "$", "parallel_refit")
    intra_workers = int(require(refit, "parallel_refit", "intra_workers"))
    speedup = float(require(refit, "parallel_refit", "speedup"))
    require(refit, "parallel_refit", "guarded_speedup")
    require(refit, "parallel_refit", "guarded_fanned")
    require(refit, "parallel_refit", "min_fan_used")
    require(refit, "parallel_refit", "seq_ms")
    require(refit, "parallel_refit", "par_ms")
    require(refit, "parallel_refit", "guarded_ms")
    if require(refit, "parallel_refit", "totals_match") is not True:
        failures.append("parallel_refit.totals_match is false — the "
                        "parallel solve diverged from sequential")

    capable = hardware >= intra_workers
    if capable and speedup < SPEEDUP_FLOOR:
        failures.append(
            f"parallel_refit.speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x "
            f"at {intra_workers} workers on {hardware} hardware threads")

    scale = require(doc, "$", "parallel_refit_scale")
    if not isinstance(scale, list) or not scale:
        failures.append("parallel_refit_scale is empty")
        scale = []
    base_speedup = None
    for i, probe in enumerate(scale):
        where = f"parallel_refit_scale[{i}]"
        env = require(probe, where, "environment")
        ps = float(require(probe, where, "speedup"))
        require(probe, where, "workers_curve")
        if require(probe, where, "totals_match") is not True:
            failures.append(f"{where} ({env}): totals_match is false")
        if base_speedup is None:
            base_speedup = ps
        elif capable and ps < base_speedup - SCALE_TOLERANCE:
            failures.append(
                f"{where} ({env}): speedup {ps:.2f}x shrank below the "
                f"smallest probe's {base_speedup:.2f}x — parallelism must "
                "grow with environment size")

    churn = require(doc, "$", "churn_probe")
    churn_steps = int(require(churn, "churn_probe", "steps"))
    churn_warm = int(require(churn, "churn_probe", "warm_steps"))
    churn_touched = int(require(churn, "churn_probe", "touched_apps"))
    churn_speedup = float(require(churn, "churn_probe", "speedup"))
    require(churn, "churn_probe", "warm_ms")
    require(churn, "churn_probe", "cold_ms")
    if require(churn, "churn_probe", "totals_match") is not True:
        failures.append("churn_probe.totals_match is false — a warm "
                        "resolve's totals diverged from a cache-free "
                        "re-evaluation of the same design")
    if churn_steps <= 0:
        failures.append("churn_probe.steps is 0 — the probe did not run")
    elif churn_warm < churn_steps:
        failures.append(
            f"churn_probe fell back to a cold solve on "
            f"{churn_steps - churn_warm} of {churn_steps} steps — the "
            "warm path must serve every small delta")
    small_deltas = (churn_steps > 0 and
                    churn_touched <=
                    CHURN_SMALL_DELTA_APPS_PER_STEP * churn_steps)
    if small_deltas and churn_speedup < CHURN_SPEEDUP_FLOOR:
        failures.append(
            f"churn_probe.speedup {churn_speedup:.2f}x < "
            f"{CHURN_SPEEDUP_FLOOR}x — warm re-design lost its "
            "algorithmic advantage over cold solves on small deltas")

    corr = require(doc, "$", "correlation_probe")
    corr_overhead = float(require(corr, "correlation_probe", "overhead"))
    require(corr, "correlation_probe", "flat_eval_ms")
    require(corr, "correlation_probe", "tree_eval_ms")
    require(corr, "correlation_probe", "sweep")
    require(corr, "correlation_probe", "design_shifted")
    if require(corr, "correlation_probe", "totals_match") is not True:
        failures.append("correlation_probe.totals_match is false — the "
                        "degenerate tree diverged from the flat model")
    if corr_overhead > CORRELATION_OVERHEAD_CEILING:
        failures.append(
            f"correlation_probe.overhead {corr_overhead:.2f}x > "
            f"{CORRELATION_OVERHEAD_CEILING}x — tree-model evaluation "
            "became a tax on every solve")

    serve = require(doc, "$", "serve_probe")
    if require(serve, "serve_probe", "errors") != 0:
        failures.append("serve_probe.errors != 0")
    expected = (require(serve, "serve_probe", "clients") *
                require(serve, "serve_probe", "requests_per_client"))
    if require(serve, "serve_probe", "completed") != expected:
        failures.append("serve_probe dropped requests")

    print(f"perf gate: hardware_threads={hardware}, "
          f"intra_workers={intra_workers} "
          f"({'timing floor enforced' if capable else 'timing floor skipped: too few cores'})")
    print(f"  parallel_refit: {refit['seq_ms']:.1f} ms -> "
          f"{refit['par_ms']:.1f} ms forced ({speedup:.2f}x), "
          f"auto min-fan={refit['min_fan_used']} "
          f"{refit['guarded_ms']:.1f} ms ({refit['guarded_speedup']:.2f}x)")
    for probe in scale:
        print(f"  scale {probe['environment']}: {probe['speedup']:.2f}x, "
              f"totals_match={probe['totals_match']}")
    print(f"  churn: warm {churn['warm_ms']:.1f} ms vs cold "
          f"{churn['cold_ms']:.1f} ms over {churn_steps} steps "
          f"({churn_speedup:.2f}x, {churn_warm} warm, "
          f"{churn_touched} apps touched, "
          f"totals_match={churn['totals_match']})")
    print(f"  correlation: flat {corr['flat_eval_ms']:.1f} ms vs tree "
          f"{corr['tree_eval_ms']:.1f} ms ({corr_overhead:.2f}x), "
          f"totals_match={corr['totals_match']}, "
          f"design_shifted={corr['design_shifted']}")
    print(f"  serve: {serve['completed']}/{expected} completed, "
          f"{serve['jobs_per_sec']:.1f} jobs/s")

    if failures:
        for f in failures:
            print(f"perf gate FAIL: {f}", file=sys.stderr)
        return 1
    print("perf gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
