#!/usr/bin/env python3
"""CI perf gate over BENCH_solver_perf.json.

Fails (exit 1) when:
  * any field this gate reads is missing from the JSON — a stale or
    truncated artifact must not pass silently;
  * `totals_match` is false on the parallel-refit probe or any scale probe
    (the bit-identical determinism contract, enforced unconditionally);
  * the serve probe dropped or rejected any request;
  * on a capable host only (hardware_threads >= intra_workers): the
    forced-fan speedup at 4 workers falls below the gate floor (1.8x —
    below the 2.0x local bar to absorb CI-runner noise), or speedup fails
    to grow with environment size across the scale probes.

Wall-clock speedup assertions are keyed off the recorded
`hardware_threads`: a runner with fewer cores than workers physically
cannot show parallel speedup, so there the gate checks correctness
(totals, field presence, counters) and skips the timing floor rather than
failing on hardware the benchmark never claimed to cover.

Usage: perf_gate.py [BENCH_solver_perf.json]
"""

import json
import sys

SPEEDUP_FLOOR = 1.8
# Scale probes may jitter a few percent run to run; "grows with scale"
# tolerates that without letting a real regression through.
SCALE_TOLERANCE = 0.05


def require(obj, path, key):
    """Fetch obj[key], failing loudly when the field is absent."""
    if isinstance(obj, dict) and key in obj:
        return obj[key]
    raise SystemExit(f"perf gate: {path}.{key} missing from the JSON "
                     "(stale or truncated artifact?)")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_solver_perf.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        raise SystemExit(f"perf gate: cannot read {path}: {e}")

    failures = []
    hardware = int(require(doc, "$", "hardware_threads"))

    refit = require(doc, "$", "parallel_refit")
    intra_workers = int(require(refit, "parallel_refit", "intra_workers"))
    speedup = float(require(refit, "parallel_refit", "speedup"))
    require(refit, "parallel_refit", "guarded_speedup")
    require(refit, "parallel_refit", "guarded_fanned")
    require(refit, "parallel_refit", "min_fan_used")
    require(refit, "parallel_refit", "seq_ms")
    require(refit, "parallel_refit", "par_ms")
    require(refit, "parallel_refit", "guarded_ms")
    if require(refit, "parallel_refit", "totals_match") is not True:
        failures.append("parallel_refit.totals_match is false — the "
                        "parallel solve diverged from sequential")

    capable = hardware >= intra_workers
    if capable and speedup < SPEEDUP_FLOOR:
        failures.append(
            f"parallel_refit.speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x "
            f"at {intra_workers} workers on {hardware} hardware threads")

    scale = require(doc, "$", "parallel_refit_scale")
    if not isinstance(scale, list) or not scale:
        failures.append("parallel_refit_scale is empty")
        scale = []
    base_speedup = None
    for i, probe in enumerate(scale):
        where = f"parallel_refit_scale[{i}]"
        env = require(probe, where, "environment")
        ps = float(require(probe, where, "speedup"))
        require(probe, where, "workers_curve")
        if require(probe, where, "totals_match") is not True:
            failures.append(f"{where} ({env}): totals_match is false")
        if base_speedup is None:
            base_speedup = ps
        elif capable and ps < base_speedup - SCALE_TOLERANCE:
            failures.append(
                f"{where} ({env}): speedup {ps:.2f}x shrank below the "
                f"smallest probe's {base_speedup:.2f}x — parallelism must "
                "grow with environment size")

    serve = require(doc, "$", "serve_probe")
    if require(serve, "serve_probe", "errors") != 0:
        failures.append("serve_probe.errors != 0")
    expected = (require(serve, "serve_probe", "clients") *
                require(serve, "serve_probe", "requests_per_client"))
    if require(serve, "serve_probe", "completed") != expected:
        failures.append("serve_probe dropped requests")

    print(f"perf gate: hardware_threads={hardware}, "
          f"intra_workers={intra_workers} "
          f"({'timing floor enforced' if capable else 'timing floor skipped: too few cores'})")
    print(f"  parallel_refit: {refit['seq_ms']:.1f} ms -> "
          f"{refit['par_ms']:.1f} ms forced ({speedup:.2f}x), "
          f"auto min-fan={refit['min_fan_used']} "
          f"{refit['guarded_ms']:.1f} ms ({refit['guarded_speedup']:.2f}x)")
    for probe in scale:
        print(f"  scale {probe['environment']}: {probe['speedup']:.2f}x, "
              f"totals_match={probe['totals_match']}")
    print(f"  serve: {serve['completed']}/{expected} completed, "
          f"{serve['jobs_per_sec']:.1f} jobs/s")

    if failures:
        for f in failures:
            print(f"perf gate FAIL: {f}", file=sys.stderr)
        return 1
    print("perf gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
