#!/usr/bin/env bash
# Regenerate every paper artifact (EXPERIMENTS.md's numbers) plus the
# validation and ablation benches.
#
#   scripts/run_experiments.sh [build-dir] [time-budget-ms]
#
# Budgets: the paper ran 30 minutes per heuristic; the default here is 5 s,
# which preserves every reported shape. Raise the budget for tighter random-
# baseline numbers.
set -euo pipefail

BUILD_DIR="${1:-build}"
BUDGET_MS="${2:-5000}"
SEED="${SEED:-42}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

for bench in \
    bench_table4_case_study \
    bench_fig2_solution_space \
    bench_fig3_heuristic_comparison \
    bench_fig4_scalability \
    bench_fig5_object_sensitivity \
    bench_fig6_disk_sensitivity \
    bench_fig7_site_sensitivity \
    bench_model_validation \
    bench_ablation_solver \
    bench_ablation_recovery_order \
    bench_ablation_backup_cycle; do
  echo "===== ${bench} ====="
  "$BUILD_DIR/bench/$bench" --time-budget-ms="$BUDGET_MS" --seed="$SEED"
  echo
done

echo "===== bench_solver_perf ====="
"$BUILD_DIR/bench/bench_solver_perf" --benchmark_min_time=0.1
