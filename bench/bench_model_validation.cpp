// Model validation (not a paper artifact): Monte Carlo failure injection vs
// the analytic evaluation the solvers price with.
//
// The design tool's solution for the peer-sites case is lived through for
// thousands of simulated years of Poisson failures; realized outage and
// recent-loss penalties are compared against the analytic expectation.
// Outage penalties should agree closely; simulated loss should land between
// half the analytic value and the analytic value (the analytic model
// charges §3.2.1's worst-case staleness, the simulator samples the failure
// point uniformly within the copy cycle).
//
//   ./bench_model_validation [--apps=8] [--years=3000] [--time-budget-ms=1500]
//                            [--seed=42] [--csv]
#include "bench_common.hpp"
#include "core/scenarios.hpp"
#include "sim/monte_carlo.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  using namespace depstor::bench;
  try {
    const CliFlags flags(argc, argv);
    const auto cfg = HarnessConfig::from_flags(flags);
    const int apps = flags.get_int("apps", 8);
    const double years = flags.get_double("years", 3000.0);
    flags.reject_unknown();

    Environment env = scenarios::peer_sites(apps);
    DesignTool tool(env);
    const auto designed = tool.design(cfg.solver_options());
    if (!designed.feasible) {
      std::cout << "no feasible design to validate\n";
      return 1;
    }

    MonteCarloSimulator sim(&env);
    const auto mc =
        sim.run(*designed.best, {.years = years, .seed = cfg.seed});

    std::cout << "== Analytic model vs Monte Carlo failure injection ("
              << apps << " apps, " << years << " simulated years, "
              << mc.events << " failure events) ==\n\n";
    Table table({"Quantity", "Analytic (worst-case)", "Simulated",
                 "Simulated/Analytic"});
    table.add_row({"annual outage penalty",
                   Table::money(designed.cost.outage_penalty),
                   Table::money(mc.annual_outage_penalty()),
                   ratio(mc.annual_outage_penalty(),
                         designed.cost.outage_penalty)});
    table.add_row({"annual loss penalty",
                   Table::money(designed.cost.loss_penalty),
                   Table::money(mc.annual_loss_penalty()),
                   ratio(mc.annual_loss_penalty(),
                         designed.cost.loss_penalty)});
    table.add_row({"annual penalties total",
                   Table::money(designed.cost.penalty()),
                   Table::money(mc.annual_penalty()),
                   ratio(mc.annual_penalty(), designed.cost.penalty())});
    print_table(table, cfg.csv);

    std::cout << "\nPer-application realized statistics:\n";
    Table detail({"App", "Events", "Outage h/yr", "Loss h/yr",
                  "Penalty $/yr"});
    for (const auto& s : mc.per_app) {
      detail.add_row({env.app(s.app_id).name,
                      std::to_string(s.failure_events),
                      Table::num(s.outage_hours / years, 3),
                      Table::num(s.loss_hours / years, 3),
                      Table::money((s.outage_penalty + s.loss_penalty) /
                                   years)});
    }
    print_table(detail, cfg.csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
