// Table 4: the data protection solution chosen by the design tool for the
// peer-sites case study (paper §4.3.2), plus the input catalogs (Tables 1-3)
// with --show-inputs.
//
// Expected shape: applications with high outage penalty rates employ
// failover; every application carries some form of tape backup; the
// sync-vs-async mirror choice is a near-tie under the Table 3 prices (see
// EXPERIMENTS.md).
//
//   ./bench_table4_case_study [--apps=8] [--time-budget-ms=1500] [--seed=42]
//                             [--show-inputs] [--csv]
#include "bench_common.hpp"
#include "core/scenarios.hpp"
#include "protection/catalog.hpp"
#include "resources/catalog.hpp"
#include "workload/catalog.hpp"

namespace {

using namespace depstor;

void print_inputs(const Environment& env, bool csv) {
  using depstor::bench::print_table;
  std::cout << "-- Table 1: application classes --\n";
  Table t1({"Type", "Outage $/hr", "Loss $/hr", "Size GB", "Avg upd MB/s",
            "Peak upd MB/s", "Access MB/s", "Category"});
  for (const auto& app : workload::all_prototypes()) {
    t1.add_row({app.type_code, Table::money(app.outage_penalty_rate),
                Table::money(app.loss_penalty_rate),
                Table::num(app.data_size_gb, 0),
                Table::num(app.avg_update_mbps, 1),
                Table::num(app.peak_update_mbps, 1),
                Table::num(app.avg_access_mbps, 1),
                to_string(app.category())});
  }
  print_table(t1, csv);

  std::cout << "\n-- Table 2: data protection techniques --\n";
  Table t2({"Technique", "Recovery", "Category", "Mirror accWin"});
  for (const auto& tech : protection::all_techniques()) {
    t2.add_row({tech.name, to_string(tech.recovery), to_string(tech.category),
                tech.has_mirror() ? Table::hours(tech.mirror_accumulation_hours)
                                  : "-"});
  }
  print_table(t2, csv);

  std::cout << "\n-- Table 3: device catalog --\n";
  Table t3({"Device", "Class", "Fixed $", "Per cap unit $", "Per BW unit $",
            "Max cap units", "Max BW units", "GB/unit", "MB/s/unit"});
  for (const auto& d : {resources::xp1200(), resources::eva8000(),
                        resources::msa1500(), resources::tape_library_high(),
                        resources::tape_library_med(),
                        resources::network_high(), resources::network_med(),
                        resources::compute_high()}) {
    t3.add_row({d.name, to_string(d.cls), Table::money(d.fixed_cost),
                Table::money(d.cost_per_capacity_unit),
                Table::money(d.cost_per_bandwidth_unit),
                std::to_string(d.max_capacity_units),
                std::to_string(d.max_bandwidth_units),
                Table::num(d.capacity_unit_gb, 0),
                Table::num(d.bandwidth_unit_mbps, 0)});
  }
  print_table(t3, csv);
  std::cout << "\n";
  (void)env;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace depstor;
  using namespace depstor::bench;
  try {
    const CliFlags flags(argc, argv);
    const auto cfg = HarnessConfig::from_flags(flags);
    const int apps = flags.get_int("apps", 8);
    const bool show_inputs = flags.get_bool("show-inputs", false);
    flags.reject_unknown();

    DesignTool tool(scenarios::peer_sites(apps));
    if (show_inputs) print_inputs(tool.env(), cfg.csv);

    std::cout << "== Table 4: design chosen by the tool, peer sites (" << apps
              << " apps) ==\n\n";
    const auto result = tool.design(cfg.solver_options());
    if (!result.feasible) {
      std::cout << "no feasible design found within the budget\n";
      return 1;
    }
    std::cout << DesignTool::describe(tool.env(), *result.best) << "\n";
    std::cout << DesignTool::describe_cost(tool.env(), result.cost) << "\n";

    // The §4.3.2 headline observations, checked mechanically.
    int failover_high_outage = 0;
    int high_outage = 0;
    int with_backup = 0;
    for (const auto& asg : result.best->assignments()) {
      const auto& app = tool.env().app(asg.app_id);
      if (app.outage_penalty_rate >= 1e6) {
        ++high_outage;
        if (asg.technique.recovery == RecoveryMode::Failover) {
          ++failover_high_outage;
        }
      }
      if (asg.technique.has_backup) ++with_backup;
    }
    std::cout << "high-outage apps using failover: " << failover_high_outage
              << "/" << high_outage << "\n"
              << "apps with tape backup: " << with_backup << "/"
              << result.best->assigned_count() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
