// Figure 7: design tool solution cost vs the likelihood of a site disaster,
// swept from once in five years to once in fifty years (paper §4.5).
//
// Expected shape: nearly flat, like Figure 6 — mirrored/failover designs
// absorb more frequent disasters with modest extra outlay.
//
//   ./bench_fig7_site_sensitivity [--apps=16] [--sites=4] [--links=6]
//                                 [--time-budget-ms=1500] [--seed=42] [--csv]
#include "bench_sensitivity_common.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  using namespace depstor::bench;
  try {
    const CliFlags flags(argc, argv);
    const auto cfg = HarnessConfig::from_flags(flags);
    const int apps = flags.get_int("apps", 16);
    const int sites = flags.get_int("sites", 4);
    const int links = flags.get_int("links", 6);
    flags.reject_unknown();

    const std::vector<SweepPoint> points = {
        {"1 / 5 yr", 0.2},   {"1 / 10 yr", 0.1},  {"1 / 20 yr", 0.05},
        {"1 / 35 yr", 1.0 / 35}, {"1 / 50 yr", 0.02},
    };
    run_sensitivity_sweep("Figure 7", "site disaster likelihood", points, cfg,
                          apps, sites, links,
                          [](FailureModel& f, double rate) {
                            f.site_disaster_rate = rate;
                          });
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
