// Ablation: which parts of the design solver earn their keep (not a paper
// artifact — it justifies the paper's design choices quantitatively).
//
// Variants, all at the same wall-clock budget and seed:
//   full             greedy + refit, scoped config solve per node (default)
//   no-refit         greedy best-fit only (stage 1), best over restarts
//   literal-alg1     full every-app config sweep at every node (§3 taken
//                    literally; far fewer nodes per second)
//   narrow-search    b=1, d=1 — hill-climb instead of the b×d walk
//   greedy-max       deterministic max-penalty greedy order (Algorithm 1
//                    line 4) instead of the §3.1.1 weighted-random order
//   no-load-balance  α_util=0 — resource choice by usage-diversity only
//
//   ./bench_ablation_solver [--apps=8] [--time-budget-ms=1500] [--seed=42]
//                           [--csv]
#include "bench_common.hpp"
#include "core/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  using namespace depstor::bench;
  try {
    const CliFlags flags(argc, argv);
    const auto cfg = HarnessConfig::from_flags(flags);
    const int apps = flags.get_int("apps", 8);
    flags.reject_unknown();

    DesignTool tool(scenarios::peer_sites(apps));

    struct Variant {
      const char* name;
      DesignSolverOptions options;
    };
    std::vector<Variant> variants;
    const DesignSolverOptions base = cfg.solver_options();
    variants.push_back({"full", base});
    {
      auto o = base;
      o.max_refit_iterations = 0;
      variants.push_back({"no-refit", o});
    }
    {
      auto o = base;
      o.full_config_solve_every_node = true;
      variants.push_back({"literal-alg1", o});
    }
    {
      auto o = base;
      o.breadth = 1;
      o.depth = 1;
      variants.push_back({"narrow-search", o});
    }
    {
      auto o = base;
      o.greedy_order = GreedyOrder::MaxPenalty;
      variants.push_back({"greedy-max", o});
    }
    {
      auto o = base;
      o.reconfigure.alpha_util = 0.0;
      variants.push_back({"no-load-balance", o});
    }

    std::cout << "== Solver ablation, peer sites (" << apps << " apps, "
              << cfg.time_budget_ms << " ms/variant) ==\n\n";
    double full_total = 0.0;
    Table table({"Variant", "Total/yr", "vs full", "Nodes", "Refit iters"});
    for (const auto& v : variants) {
      const auto result = tool.design(v.options);
      if (!result.feasible) {
        table.add_row({v.name, "infeasible", "-", "-", "-"});
        continue;
      }
      if (std::string(v.name) == "full") full_total = result.cost.total();
      table.add_row({v.name, Table::money(result.cost.total()),
                     full_total > 0.0 ? ratio(result.cost.total(), full_total)
                                      : "-",
                     std::to_string(result.nodes_evaluated),
                     std::to_string(result.refit_iterations)});
    }
    print_table(table, cfg.csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
