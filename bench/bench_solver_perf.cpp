// Solver kernel throughput (google-benchmark).
//
// Not a paper artifact: these microbenchmarks size the evaluation budget —
// how many candidate evaluations, recovery simulations, and reconfiguration
// moves per second the search heuristics get to spend. Useful when tuning
// the time budgets of the figure harnesses.
//
// After the microbenchmarks the harness runs (1) an incremental-evaluation
// probe — the same ConfigSolver workload on the largest bundled environment
// with the incremental path disabled (pre-optimization behavior) and enabled
// — and (2) a short batch-engine probe (an 8-job sensitivity-style batch on
// the hardware's worker count). The headline numbers — before/after solve
// times and speedup, scenario reuse counters, per-stage timings, jobs/sec,
// nodes/sec, evaluation-cache hit rate — go to BENCH_solver_perf.json so CI
// and tuning scripts can diff them.
//
// A third probe exercises the intra-solve parallel refit search: the same
// deterministic single-solve workload on multi_site(24,6,8) run sequentially
// (--intra-workers implied 1), with the refit fan forced onto N threads
// (`--intra-workers=N`, default 4; intra_min_fan=1), and with the default
// auto-calibrated ExecutionOptions::intra_min_fan (the "guarded" leg — the
// measured threshold decides which fans pool). The determinism contract
// makes all legs comparable: total costs must match bit-for-bit, and the
// JSON's "parallel_refit" section carries the timings, speedups, and
// task/steal counters. The same seq-vs-forced comparison then repeats at
// production scale — multi_site(48,12,8) and multi_site(96,24,8) — into the
// "parallel_refit_scale" array (the paper's §5 scalability axis: speedup
// should grow, not shrink, with environment size). `--sweep-intra-workers`
// additionally records a speedup-vs-workers curve (1/2/4/8) per scale env.
// The JSON also records "hardware_threads": wall-clock speedup is only
// meaningful where the host has cores to run the workers, and the CI gate
// (scripts/perf_gate.py) uses it to decide which assertions apply.
//
// A fourth probe ("serve_probe") drives an in-process serve::Server with 8
// concurrent loopback clients streaming small deterministic design requests,
// recording jobs/sec and p50/p95 end-to-end latency.
//
// A fifth probe ("churn_probe") drifts the 24-app environment through 50
// random deltas (1–4 apps added/removed/resized per step) and re-designs
// each successor twice: warm via `depstor::resolve` and cold from scratch
// with identical options. It records the cumulative warm-vs-cold speedup
// and whether every warm result's totals matched a cache-free
// re-evaluation bit for bit. The process exit code asserts `totals_match`
// for the incremental, parallel-refit, and churn probes and zero
// dropped/rejected requests for the serve probe.
//
// `--smoke` (the CI mode) skips the google-benchmark microbenchmarks and
// shrinks the engine probe, but still runs every probe and writes the JSON.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/api.hpp"
#include "core/scenarios.hpp"
#include "cost/breakdown.hpp"
#include "engine/engine.hpp"
#include "model/domain.hpp"
#include "model/recovery_sim.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "solver/config_solver.hpp"
#include "solver/design_solver.hpp"
#include "solver/reconfigure.hpp"
#include "util/json.hpp"
#include "test_helpers_bench.hpp"

namespace {

using namespace depstor;

/// Fully-placed peer-sites candidate used as the evaluation workload.
Candidate placed_candidate(const Environment& env) {
  Candidate cand(&env);
  Rng rng(99);
  Reconfigurator rec(&env, &rng);
  for (int i = 0; i < static_cast<int>(env.apps.size()); ++i) {
    if (!rec.reconfigure_app(cand, i)) {
      throw InfeasibleError("bench setup could not place app");
    }
  }
  return cand;
}

void BM_CandidateEvaluate(benchmark::State& state) {
  // Peer sites fit ≤8 failover-capable apps (8 compute slots per site);
  // larger counts use the 4-site environment.
  const int apps = static_cast<int>(state.range(0));
  const Environment env =
      apps <= 8 ? scenarios::peer_sites(apps) : scenarios::multi_site(apps);
  const Candidate cand = placed_candidate(env);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cand.evaluate().total());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CandidateEvaluate)->Arg(4)->Arg(8)->Arg(16);

void BM_RecoverySimulation(benchmark::State& state) {
  const Environment env =
      scenarios::peer_sites(static_cast<int>(state.range(0)));
  const Candidate cand = placed_candidate(env);
  const auto scenarios_list = enumerate_scenarios(
      env.apps, cand.assignments(), cand.pool(), env.failures);
  for (auto _ : state) {
    for (const auto& s : scenarios_list) {
      benchmark::DoNotOptimize(simulate_recovery(
          s, env.apps, cand.assignments(), cand.pool(), env.params));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(scenarios_list.size()));
}
BENCHMARK(BM_RecoverySimulation)->Arg(4)->Arg(8);

void BM_ConfigSolver(benchmark::State& state) {
  const Environment env =
      scenarios::peer_sites(static_cast<int>(state.range(0)));
  const Candidate base = placed_candidate(env);
  ConfigSolver solver(&env);
  for (auto _ : state) {
    Candidate cand = base;
    benchmark::DoNotOptimize(solver.solve(cand).total());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ConfigSolver)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ReconfigureMove(benchmark::State& state) {
  const Environment env = scenarios::peer_sites(8);
  Candidate cand = placed_candidate(env);
  Rng rng(7);
  Reconfigurator rec(&env, &rng);
  const CostBreakdown cost = cand.evaluate();
  for (auto _ : state) {
    const int app = rec.pick_app_to_reconfigure(cand, cost);
    benchmark::DoNotOptimize(rec.reconfigure_app(cand, app));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ReconfigureMove)->Unit(benchmark::kMillisecond);

void BM_PlaceRemoveApp(benchmark::State& state) {
  const Environment env = scenarios::peer_sites(1);
  Candidate cand(&env);
  const DesignChoice choice =
      bench_testing::full_protection_choice();
  for (auto _ : state) {
    cand.place_app(0, choice);
    cand.remove_app(0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PlaceRemoveApp);

void BM_FullDesignSolve(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Environment env = scenarios::peer_sites(8);
    state.ResumeTiming();
    SolveRequest request;
    request.env = &env;
    request.options.time_budget_ms = 1e9;  // bounded by repetitions instead
    request.options.max_repetitions = 1;
    request.options.max_refit_iterations = 1;
    request.options.seed = 5;
    benchmark::DoNotOptimize(solve(request).feasible);
  }
}
BENCHMARK(BM_FullDesignSolve)->Unit(benchmark::kMillisecond);

/// One leg of the incremental-evaluation probe: the full ConfigSolver pass
/// on a fixed candidate with the incremental path on or off.
struct ProbeLeg {
  double solve_ms = 0.0;
  double total_cost = 0.0;
  ConfigSolverStats stats;
};

/// Before/after comparison on the largest bundled environment
/// (multi_site(24)): identical workload, identical results, the only
/// difference is the evaluation path. "before" (incremental disabled) is the
/// pre-optimization behavior — every probe re-simulates every scenario.
struct IncrementalProbe {
  ProbeLeg before;  ///< full recompute per evaluation
  ProbeLeg after;   ///< dirty-tracked incremental evaluation
  double speedup() const {
    return after.solve_ms > 0.0 ? before.solve_ms / after.solve_ms : 0.0;
  }
  bool totals_match() const {
    return before.total_cost == after.total_cost;
  }
};

ProbeLeg run_probe_leg(const Environment& env, const Candidate& base,
                       bool incremental) {
  // Best of several repetitions: one solve is ~10 ms, well inside the
  // scheduler/frequency noise floor, and the solve is deterministic — the
  // minimum is the honest estimate of each leg's cost.
  constexpr int kRepetitions = 3;
  ProbeLeg best;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    Candidate cand = base;
    cand.set_incremental_enabled(incremental);
    ConfigSolver solver(&env);
    ProbeLeg leg;
    const auto t0 = std::chrono::steady_clock::now();
    leg.total_cost = solver.solve(cand).total();
    leg.solve_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    leg.stats = solver.stats();
    if (rep == 0 || leg.solve_ms < best.solve_ms) best = leg;
  }
  return best;
}

IncrementalProbe run_incremental_probe() {
  const Environment env = scenarios::multi_site(24, 6, 8);
  const Candidate base = placed_candidate(env);
  IncrementalProbe probe;
  probe.before = run_probe_leg(env, base, /*incremental=*/false);
  probe.after = run_probe_leg(env, base, /*incremental=*/true);
  return probe;
}

/// One leg of the parallel-refit probe: a fixed deterministic single solve
/// of the largest bundled environment with the refit fan on `intra_workers`
/// threads. Fixed work (one repetition, deterministic — no wall-clock
/// cutoffs), so the node set and the final cost are identical for every
/// worker count by the DESIGN.md §9 contract.
struct RefitLeg {
  double solve_ms = 0.0;
  double total_cost = 0.0;
  std::int64_t nodes_evaluated = 0;
  std::int64_t parallel_tasks = 0;
  std::int64_t steal_count = 0;
  bool fanned = false;       ///< SolveResult::refit_fanned — which path ran
  int min_fan_used = 0;      ///< SolveResult::intra_min_fan_used
};

struct ParallelRefitProbe {
  int intra_workers = 4;
  RefitLeg sequential;  ///< intra_workers = 1
  RefitLeg parallel;    ///< intra_workers = N, fan forced (intra_min_fan=1)
  /// intra_workers = N under the default auto-calibrated threshold
  /// (intra_min_fan = 0): the solve measures dispatch overhead vs node cost
  /// at refit entry and pools only fans wide enough to pay — this leg is
  /// what a caller gets out of the box.
  RefitLeg guarded;
  double speedup() const {
    return parallel.solve_ms > 0.0 ? sequential.solve_ms / parallel.solve_ms
                                   : 0.0;
  }
  double guarded_speedup() const {
    return guarded.solve_ms > 0.0 ? sequential.solve_ms / guarded.solve_ms
                                  : 0.0;
  }
  bool totals_match() const {
    return sequential.total_cost == parallel.total_cost &&
           sequential.nodes_evaluated == parallel.nodes_evaluated &&
           sequential.total_cost == guarded.total_cost &&
           sequential.nodes_evaluated == guarded.nodes_evaluated;
  }
};

RefitLeg run_refit_leg(const Environment& env, int intra_workers,
                       int intra_min_fan, int repetitions,
                       int max_refit_iterations) {
  // Best of `repetitions`: the solve is deterministic, so the minimum is the
  // honest estimate of each leg's cost (same rationale as the incremental
  // probe).
  RefitLeg best;
  for (int rep = 0; rep < repetitions; ++rep) {
    SolveRequest request;
    request.env = &env;
    request.options.seed = 42;
    request.options.max_repetitions = 1;
    // Deterministic fixed work: enough refit iterations to exercise the fan
    // well past warm-up, few enough to keep the probe in CI-smoke range.
    request.options.max_refit_iterations = max_refit_iterations;
    request.exec.deterministic = true;
    request.exec.intra_node_workers = intra_workers;
    request.exec.intra_min_fan = intra_min_fan;
    RefitLeg leg;
    const auto t0 = std::chrono::steady_clock::now();
    const SolveResult result = solve(request);
    leg.solve_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    if (!result.feasible) {
      throw InfeasibleError("parallel-refit probe found no feasible design");
    }
    leg.total_cost = result.cost.total();
    leg.nodes_evaluated = result.nodes_evaluated;
    leg.parallel_tasks = result.refit_parallel_tasks;
    leg.steal_count = result.refit_steal_count;
    leg.fanned = result.refit_fanned;
    leg.min_fan_used = result.intra_min_fan_used;
    if (rep == 0 || leg.solve_ms < best.solve_ms) best = leg;
  }
  return best;
}

ParallelRefitProbe run_parallel_refit_probe(int intra_workers,
                                            int repetitions) {
  const Environment env = scenarios::multi_site(24, 6, 8);
  ParallelRefitProbe probe;
  probe.intra_workers = intra_workers;
  probe.sequential = run_refit_leg(env, 1, 1, repetitions, 8);
  probe.parallel = run_refit_leg(env, intra_workers, 1, repetitions, 8);
  probe.guarded = run_refit_leg(env, intra_workers, /*intra_min_fan=*/0,
                                repetitions, 8);
  return probe;
}

/// One point of the speedup-vs-workers curve (--sweep-intra-workers).
struct WorkerPoint {
  int workers = 1;
  double solve_ms = 0.0;
  double speedup = 1.0;  ///< vs the same probe's 1-worker leg
};

/// Scaled seq-vs-forced-fan comparison for one environment — the §5
/// scalability axis. Larger environments carry coarser per-node work, so
/// the fan's dispatch overhead shrinks relative to useful work and speedup
/// should grow with scale.
struct ScaleProbe {
  std::string environment;
  int apps = 0;
  int refit_iterations = 0;
  int intra_workers = 4;
  RefitLeg sequential;
  RefitLeg parallel;  ///< forced fan (intra_min_fan = 1)
  std::vector<WorkerPoint> curve;  ///< populated by --sweep-intra-workers
  double speedup() const {
    return parallel.solve_ms > 0.0 ? sequential.solve_ms / parallel.solve_ms
                                   : 0.0;
  }
  bool totals_match() const {
    return sequential.total_cost == parallel.total_cost &&
           sequential.nodes_evaluated == parallel.nodes_evaluated;
  }
};

ScaleProbe run_scale_probe(const char* name, const Environment& env,
                           int refit_iterations, int intra_workers,
                           int repetitions, bool sweep) {
  ScaleProbe probe;
  probe.environment = name;
  probe.apps = static_cast<int>(env.apps.size());
  probe.refit_iterations = refit_iterations;
  probe.intra_workers = intra_workers;
  probe.sequential = run_refit_leg(env, 1, 1, repetitions, refit_iterations);
  probe.parallel = run_refit_leg(env, intra_workers, 1, repetitions,
                                 refit_iterations);
  probe.curve.push_back({1, probe.sequential.solve_ms, 1.0});
  if (sweep) {
    for (int workers : {2, 4, 8}) {
      if (workers == intra_workers) continue;  // reuse the measured leg
      const RefitLeg leg =
          run_refit_leg(env, workers, 1, repetitions, refit_iterations);
      if (leg.total_cost != probe.sequential.total_cost) {
        throw InternalError("sweep leg diverged from sequential totals");
      }
      probe.curve.push_back({workers, leg.solve_ms,
                             leg.solve_ms > 0.0
                                 ? probe.sequential.solve_ms / leg.solve_ms
                                 : 0.0});
    }
  }
  probe.curve.push_back(
      {intra_workers, probe.parallel.solve_ms, probe.speedup()});
  std::sort(probe.curve.begin(), probe.curve.end(),
            [](const WorkerPoint& a, const WorkerPoint& b) {
              return a.workers < b.workers;
            });
  return probe;
}

/// Service probe: a sustained request stream against an in-process
/// serve::Server over real loopback sockets — `clients` concurrent
/// connections each submitting `requests_per_client` small deterministic
/// design requests back to back. Records end-to-end latency (send → result
/// event, queueing and wire framing included) and overall jobs/sec. Every
/// request must complete: a rejection or dropped connection is an error and
/// fails the exit gate.
struct ServeProbe {
  int clients = 8;
  int requests_per_client = 8;
  int completed = 0;
  int errors = 0;
  double elapsed_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
  double jobs_per_sec() const {
    return elapsed_ms > 0.0 ? completed / (elapsed_ms / 1000.0) : 0.0;
  }
};

/// The two-app east/west environment every probe request carries.
constexpr const char* kServeProbeEnv = R"([site]
name = east

[site]
name = west
region = 1

[link]
a = east
b = west
max_links = 12

[application]
name = billing
outage_penalty_rate = 2e6
loss_penalty_rate = 8e6
data_size_gb = 900
avg_update_mbps = 3
peak_update_mbps = 25
avg_access_mbps = 30

[application]
name = wiki
outage_penalty_rate = 2e3
loss_penalty_rate = 8e3
data_size_gb = 200
avg_update_mbps = 0.2

[failures]
data_object_rate = 1.0
regional_disaster_rate = 0.02
)";

ServeProbe run_serve_probe(int clients, int requests_per_client) {
  ServeProbe probe;
  probe.clients = clients;
  probe.requests_per_client = requests_per_client;

  serve::ServeOptions options;
  options.port = 0;  // ephemeral
  serve::Server server(options);
  server.start();

  std::mutex mu;
  std::vector<double> latencies;
  std::atomic<int> errors{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        serve::Client client("127.0.0.1", server.port());
        for (int r = 0; r < requests_per_client; ++r) {
          serve::WireRequest req;
          req.id = "probe-" + std::to_string(c) + "-" + std::to_string(r);
          req.env_ini = kServeProbeEnv;
          req.deterministic = true;
          req.options.seed =
              static_cast<std::uint64_t>(c * requests_per_client + r + 1);
          req.options.max_repetitions = 1;
          req.options.max_refit_iterations = 2;
          req.options.breadth = 2;
          req.options.depth = 2;
          const auto sent = std::chrono::steady_clock::now();
          if (!client.send_design(req)) {
            errors.fetch_add(1);
            return;
          }
          for (;;) {
            const auto event = client.next_event(100.0);
            if (!event.has_value()) {
              if (client.eof()) {
                errors.fetch_add(1);
                return;
              }
              continue;
            }
            const std::string& type = event->at("type").as_string();
            if (type == "rejected") {
              errors.fetch_add(1);
              return;
            }
            if (type != "result") continue;
            if (event->at("status").as_string() != "completed") {
              errors.fetch_add(1);
              return;
            }
            const double ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - sent)
                                  .count();
            std::lock_guard<std::mutex> lock(mu);
            latencies.push_back(ms);
            break;
          }
        }
      } catch (const std::exception&) {
        errors.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  probe.elapsed_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  server.shutdown();

  probe.completed = static_cast<int>(latencies.size());
  probe.errors = errors.load();
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double q) {
      const std::size_t idx = static_cast<std::size_t>(
          q * static_cast<double>(latencies.size() - 1) + 0.5);
      return latencies[std::min(idx, latencies.size() - 1)];
    };
    probe.p50_ms = pct(0.50);
    probe.p95_ms = pct(0.95);
    probe.max_ms = latencies.back();
  }
  return probe;
}

/// Churn probe: a living environment under random drift. Starting from a
/// cold solve of multi_site(24,6,8), every step applies a random delta
/// touching 1–4 applications (add / remove / resize) and re-designs the
/// successor environment twice — warm via `depstor::resolve` (seeded from
/// the prior step's design, refit scoped to the touched apps, the
/// incremental evaluator's scenario cache carried across the solve) and
/// cold via `depstor::solve` from scratch with identical options. The warm
/// design's reported totals must be bit-identical to a cache-free
/// re-evaluation of that design (the cross-solve cache-correctness
/// contract DEPSTOR_AUDIT enforces in tests); the cumulative warm-vs-cold
/// time ratio is the headline speedup scripts/perf_gate.py floors at 5x.
struct ChurnProbe {
  int steps = 0;
  int warm_steps = 0;  ///< steps the warm path served (no cold fallback)
  std::int64_t touched_apps = 0;  ///< sum of per-step refit focus sizes
  double warm_ms = 0.0;           ///< cumulative resolve() time
  double cold_ms = 0.0;           ///< cumulative from-scratch solve() time
  bool totals_match = true;
  double speedup() const { return warm_ms > 0.0 ? cold_ms / warm_ms : 0.0; }
};

/// One random churn step touching `ops` distinct applications. App count
/// stays inside [18, 24]: multi_site sites cap at 2 disk arrays, so the
/// 6-site base environment has headroom for exactly 24 placeable apps —
/// drifting above that would measure infeasibility handling, not warm
/// re-design. Resizes scale data_size_gb by [0.7, 1.3) clamped to
/// [50, 2000] GB so they stay inside pool capacity.
EnvDelta make_churn_delta(const Environment& env, Rng& rng, int ops,
                          int* next_name) {
  EnvDelta delta;
  std::vector<std::string> targeted;  // one op per app per step
  const auto untargeted = [&](const std::string& name) {
    return std::find(targeted.begin(), targeted.end(), name) ==
           targeted.end();
  };
  for (int i = 0; i < ops; ++i) {
    const int apps = static_cast<int>(env.apps.size());
    const int op = rng.uniform_int(0, 2);
    if (op == 0 &&
        apps + static_cast<int>(delta.add.size() - delta.remove.size()) <
            24) {
      ApplicationSpec added = env.apps[rng.index(env.apps.size())];
      added.name = "churn-" + std::to_string((*next_name)++);
      delta.add.push_back(added);
    } else if (op == 1 &&
               apps - static_cast<int>(delta.remove.size()) > 18) {
      const std::string& name = env.apps[rng.index(env.apps.size())].name;
      if (!untargeted(name)) continue;
      targeted.push_back(name);
      delta.remove.push_back(name);
    } else {
      ApplicationSpec resized = env.apps[rng.index(env.apps.size())];
      if (!untargeted(resized.name)) continue;
      targeted.push_back(resized.name);
      const double scale = rng.uniform(0.7, 1.3);
      resized.data_size_gb =
          std::min(2000.0, std::max(50.0, resized.data_size_gb * scale));
      delta.resize.push_back(resized);
    }
  }
  return delta;
}

ChurnProbe run_churn_probe(int steps) {
  auto cur_env =
      std::make_shared<const Environment>(scenarios::multi_site(24, 6, 8));
  const auto options_for = [](std::uint64_t seed) {
    DesignSolverOptions options;
    options.seed = seed;
    options.time_budget_ms = 1e9;  // bounded by repetitions: fixed work
    options.max_repetitions = 1;
    options.max_refit_iterations = 2;
    return options;
  };
  ExecutionOptions exec;
  exec.deterministic = true;

  SolveRequest first;
  first.env = cur_env.get();
  first.options = options_for(1);
  first.exec = exec;
  SolveResult seed = solve(first);
  if (!seed.feasible) {
    throw InfeasibleError("churn probe found no feasible base design");
  }
  std::optional<Candidate> cur_best = std::move(seed.best);

  ChurnProbe probe;
  probe.steps = steps;
  Rng rng(20060625);  // the paper's conference date as a seed
  int next_name = 0;
  for (int step = 0; step < steps; ++step) {
    const EnvDelta delta =
        make_churn_delta(*cur_env, rng, rng.uniform_int(1, 4), &next_name);

    ResolveRequest request;
    request.prev_env = cur_env.get();
    request.prev_solution = &*cur_best;
    request.delta = delta;
    request.options = options_for(static_cast<std::uint64_t>(step + 2));
    request.exec = exec;
    const auto warm_t0 = std::chrono::steady_clock::now();
    ResolveResult out = resolve(request);
    probe.warm_ms += std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - warm_t0)
                         .count();
    if (!out.result.feasible) {
      throw InfeasibleError("churn probe step found no feasible design");
    }
    if (out.warm) ++probe.warm_steps;
    probe.touched_apps += out.touched_apps;

    // Cross-solve cache correctness: the warm totals must equal a cold,
    // cache-free re-evaluation of the same design, bit for bit.
    Candidate fresh = *out.result.best;
    fresh.set_incremental_enabled(false);
    const CostBreakdown full = fresh.evaluate();
    probe.totals_match &= full.outlay == out.result.cost.outlay &&
                          full.outage_penalty ==
                              out.result.cost.outage_penalty &&
                          full.loss_penalty == out.result.cost.loss_penalty;

    SolveRequest cold;
    cold.env = out.env.get();
    cold.options = request.options;
    cold.exec = exec;
    const auto cold_t0 = std::chrono::steady_clock::now();
    const SolveResult cold_result = solve(cold);
    probe.cold_ms += std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - cold_t0)
                         .count();
    if (!cold_result.feasible) {
      throw InfeasibleError("churn probe cold leg found no feasible design");
    }

    cur_env = out.env;
    cur_best = std::move(out.result.best);
  }
  return probe;
}

/// Correlation probe, two halves. (1) Parity and overhead: full
/// (non-incremental) evaluations of a fixed 24-app candidate through the
/// legacy flat path and through the degenerate failure-domain tree — the
/// totals must match bit for bit (the ×1.0 correlation chain is IEEE-exact)
/// and the tree walk must stay within 1.15x of the flat path
/// (scripts/perf_gate.py enforces both). (2) A Fig-4-style sensitivity
/// sweep: re-design scenarios::regional_correlated at growing subtree
/// correlation and count cross-region mirrors — past some knob value the
/// scaled site/regional rates must push at least one design out of its
/// cheap same-region mirror into the expensive remote region.
struct CorrelationSweepPoint {
  double correlation = 1.0;
  int cross_region_mirrors = 0;
  double total_cost = 0.0;
};

struct CorrelationProbe {
  double flat_eval_ms = 0.0;
  double tree_eval_ms = 0.0;
  bool totals_match = false;
  std::vector<CorrelationSweepPoint> sweep;
  double overhead() const {
    return flat_eval_ms > 0.0 ? tree_eval_ms / flat_eval_ms : 0.0;
  }
  bool design_shifted() const {
    return !sweep.empty() &&
           sweep.back().cross_region_mirrors >
               sweep.front().cross_region_mirrors;
  }
};

int count_cross_region_mirrors(const Environment& env,
                               const Candidate& cand) {
  int n = 0;
  for (const auto& a : cand.assignments()) {
    if (!a.assigned || !a.has_mirror() || a.secondary_site < 0) continue;
    if (env.topology.site(a.primary_site).region !=
        env.topology.site(a.secondary_site).region) {
      ++n;
    }
  }
  return n;
}

CorrelationProbe run_correlation_probe(bool smoke) {
  const Environment env = scenarios::multi_site(24, 6, 8);
  const Candidate cand = placed_candidate(env);
  const ScenarioModel flat = ScenarioModel::flat_model(env.failures);
  const ScenarioModel tree = ScenarioModel::tree_model(
      std::make_shared<const FailureDomainTree>(
          FailureDomainTree::degenerate(env.topology, env.failures)),
      env.failures);

  CorrelationProbe probe;
  const int evals = smoke ? 40 : 120;
  const auto run_leg = [&](const ScenarioModel& model) {
    double sink = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < evals; ++i) {
      sink += evaluate_cost(env.apps, cand.assignments(), cand.pool(), model,
                            env.params)
                  .total();
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    benchmark::DoNotOptimize(sink);
    return ms;
  };
  // Interleaved best-of-N after a warmup round: the evaluation is
  // deterministic, the minimum is the honest estimate (same rationale as
  // the incremental probe), and alternating short flat/tree legs within
  // each round exposes both to the same ambient load — the gate compares
  // the two at a 1.15x ceiling, so a background blip that lands on only
  // one side must not read as tree overhead. Many short rounds beat few
  // long ones here: each leg only needs one quiet slice for its minimum.
  run_leg(flat);
  run_leg(tree);
  probe.flat_eval_ms = 0.0;
  probe.tree_eval_ms = 0.0;
  for (int rep = 0; rep < 15; ++rep) {
    const double f = run_leg(flat);
    const double t = run_leg(tree);
    if (rep == 0 || f < probe.flat_eval_ms) probe.flat_eval_ms = f;
    if (rep == 0 || t < probe.tree_eval_ms) probe.tree_eval_ms = t;
  }
  const CostBreakdown a =
      evaluate_cost(env.apps, cand.assignments(), cand.pool(), flat,
                    env.params);
  const CostBreakdown b =
      evaluate_cost(env.apps, cand.assignments(), cand.pool(), tree,
                    env.params);
  probe.totals_match = a.outlay == b.outlay &&
                       a.outage_penalty == b.outage_penalty &&
                       a.loss_penalty == b.loss_penalty;

  for (const double correlation : {1.0, 4.0, 16.0, 64.0}) {
    const Environment senv = scenarios::regional_correlated(8, correlation);
    SolveRequest request;
    request.env = &senv;
    request.options.seed = 42;
    request.options.time_budget_ms = 1e9;  // fixed work
    request.options.max_repetitions = 2;
    request.options.max_refit_iterations = 4;
    request.exec.deterministic = true;
    const SolveResult result = solve(request);
    if (!result.feasible) {
      throw InfeasibleError("correlation sweep found no feasible design");
    }
    probe.sweep.push_back({correlation,
                           count_cross_region_mirrors(senv, *result.best),
                           result.cost.total()});
  }
  return probe;
}

/// Batch-engine probe: a fixed `job_count`-job sweep (16 apps, rates
/// varied) on the machine's worker count, fixed work per job so the numbers
/// are comparable run to run. Returns the engine's aggregate metrics.
EngineMetricsSnapshot run_engine_probe(int job_count) {
  std::vector<DesignJob> jobs;
  for (int i = 0; i < job_count; ++i) {
    Environment env = scenarios::multi_site(16, 4, 6);
    env.failures = FailureModel::sensitivity_baseline();
    env.failures.data_object_rate = 0.5 * (i + 1);
    DesignSolverOptions o;
    o.time_budget_ms = 1e9;  // bounded by repetitions: fixed work per job
    o.max_repetitions = 1;
    o.seed = 42;
    jobs.push_back(
        DesignJob::make(std::move(env), o, "probe-" + std::to_string(i)));
  }
  EngineOptions engine;
  engine.seed = 42;
  return run_batch(std::move(jobs), engine).metrics;
}

void write_probe_leg(JsonWriter& w, const ProbeLeg& leg) {
  const auto& inc = leg.stats.incremental;
  const std::int64_t scenario_total =
      inc.scenarios_simulated + inc.scenarios_reused;
  w.begin_object()
      .field("solve_ms", leg.solve_ms)
      .field("total_cost", leg.total_cost)
      .field("evaluations", static_cast<long long>(leg.stats.evaluations))
      .field("eval_ms", leg.stats.eval_ms)
      .field("sweep_ms", leg.stats.sweep_ms)
      .field("increment_ms", leg.stats.increment_ms)
      .field("scenarios_simulated",
             static_cast<long long>(inc.scenarios_simulated))
      .field("scenarios_reused", static_cast<long long>(inc.scenarios_reused))
      .field("scenario_reuse_rate",
             scenario_total > 0
                 ? static_cast<double>(inc.scenarios_reused) /
                       static_cast<double>(scenario_total)
                 : 0.0)
      .end_object();
}

void write_perf_json(const char* path, const IncrementalProbe& probe,
                     const ParallelRefitProbe& refit,
                     const std::vector<ScaleProbe>& scale,
                     const ServeProbe& sp, const ChurnProbe& churn,
                     const CorrelationProbe& corr,
                     const EngineMetricsSnapshot& m) {
  JsonWriter w;
  w.begin_object();
  // Cores available to this run: wall-clock speedup cannot exceed what the
  // host can schedule, so the CI gate keys its assertions off this.
  w.field("hardware_threads",
          static_cast<long long>(std::thread::hardware_concurrency()));
  w.key("incremental")
      .begin_object()
      .field("environment", "multi_site(24,6,8)")
      .field("speedup", probe.speedup())
      .field("totals_match", probe.totals_match());
  w.key("before");
  write_probe_leg(w, probe.before);
  w.key("after");
  write_probe_leg(w, probe.after);
  w.end_object();
  w.key("parallel_refit")
      .begin_object()
      .field("environment", "multi_site(24,6,8)")
      .field("intra_workers", static_cast<long long>(refit.intra_workers))
      .field("intra_min_fan",
             static_cast<long long>(ExecutionOptions{}.intra_min_fan))
      .field("seq_ms", refit.sequential.solve_ms)
      .field("par_ms", refit.parallel.solve_ms)
      .field("guarded_ms", refit.guarded.solve_ms)
      .field("speedup", refit.speedup())
      .field("guarded_speedup", refit.guarded_speedup())
      .field("guarded_fanned", refit.guarded.fanned)
      .field("totals_match", refit.totals_match())
      .field("total_cost", refit.sequential.total_cost)
      .field("nodes_evaluated",
             static_cast<long long>(refit.sequential.nodes_evaluated))
      .field("parallel_tasks",
             static_cast<long long>(refit.parallel.parallel_tasks))
      .field("steal_count",
             static_cast<long long>(refit.parallel.steal_count))
      .field("min_fan_used",
             static_cast<long long>(refit.guarded.min_fan_used))
      .end_object();
  w.key("parallel_refit_scale").begin_array();
  for (const ScaleProbe& p : scale) {
    w.begin_object()
        .field("environment", p.environment)
        .field("apps", static_cast<long long>(p.apps))
        .field("refit_iterations", static_cast<long long>(p.refit_iterations))
        .field("intra_workers", static_cast<long long>(p.intra_workers))
        .field("seq_ms", p.sequential.solve_ms)
        .field("par_ms", p.parallel.solve_ms)
        .field("speedup", p.speedup())
        .field("totals_match", p.totals_match())
        .field("total_cost", p.sequential.total_cost)
        .field("nodes_evaluated",
               static_cast<long long>(p.sequential.nodes_evaluated))
        .field("parallel_tasks",
               static_cast<long long>(p.parallel.parallel_tasks))
        .field("steal_count",
               static_cast<long long>(p.parallel.steal_count));
    w.key("workers_curve").begin_array();
    for (const WorkerPoint& pt : p.curve) {
      w.begin_object()
          .field("workers", static_cast<long long>(pt.workers))
          .field("solve_ms", pt.solve_ms)
          .field("speedup", pt.speedup)
          .end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("serve_probe")
      .begin_object()
      .field("clients", static_cast<long long>(sp.clients))
      .field("requests_per_client",
             static_cast<long long>(sp.requests_per_client))
      .field("completed", static_cast<long long>(sp.completed))
      .field("errors", static_cast<long long>(sp.errors))
      .field("elapsed_ms", sp.elapsed_ms)
      .field("jobs_per_sec", sp.jobs_per_sec())
      .field("p50_ms", sp.p50_ms)
      .field("p95_ms", sp.p95_ms)
      .field("max_ms", sp.max_ms)
      .end_object();
  w.key("churn_probe")
      .begin_object()
      .field("environment", "multi_site(24,6,8)")
      .field("steps", static_cast<long long>(churn.steps))
      .field("warm_steps", static_cast<long long>(churn.warm_steps))
      .field("touched_apps", static_cast<long long>(churn.touched_apps))
      .field("warm_ms", churn.warm_ms)
      .field("cold_ms", churn.cold_ms)
      .field("speedup", churn.speedup())
      .field("totals_match", churn.totals_match)
      .end_object();
  w.key("correlation_probe")
      .begin_object()
      .field("environment", "multi_site(24,6,8)")
      .field("sweep_environment", "regional_correlated(8)")
      .field("flat_eval_ms", corr.flat_eval_ms)
      .field("tree_eval_ms", corr.tree_eval_ms)
      .field("overhead", corr.overhead())
      .field("totals_match", corr.totals_match)
      .field("design_shifted", corr.design_shifted());
  w.key("sweep").begin_array();
  for (const CorrelationSweepPoint& pt : corr.sweep) {
    w.begin_object()
        .field("correlation", pt.correlation)
        .field("cross_region_mirrors",
               static_cast<long long>(pt.cross_region_mirrors))
        .field("total_cost", pt.total_cost)
        .end_object();
  }
  w.end_array();
  w.end_object();
  w.key("engine_probe")
      .begin_object()
      .field("jobs", static_cast<long long>(m.jobs_completed))
      .field("elapsed_ms", m.elapsed_ms)
      .field("jobs_per_sec", m.jobs_per_sec())
      .field("nodes_evaluated", static_cast<long long>(m.nodes_evaluated))
      .field("nodes_per_sec", m.nodes_per_sec())
      .field("evaluations", static_cast<long long>(m.evaluations))
      .field("scenarios_simulated",
             static_cast<long long>(m.scenarios_simulated))
      .field("scenarios_reused", static_cast<long long>(m.scenarios_reused))
      .field("cache_hits", static_cast<long long>(m.cache.hits))
      .field("cache_misses", static_cast<long long>(m.cache.misses))
      .field("cache_hit_rate", m.cache.hit_rate())
      .field("p50_job_ms", m.p50_job_ms)
      .field("p95_job_ms", m.p95_job_ms)
      .end_object();
  w.end_object();
  std::ofstream file(path);
  file << w.str() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // `--smoke`, `--intra-workers=N`, and `--sweep-intra-workers` are ours,
  // not google-benchmark's: strip them before Initialize.
  bool smoke = false;
  bool sweep = false;
  int intra_workers = 4;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    if (arg == "--sweep-intra-workers") {
      sweep = true;
      continue;
    }
    if (arg.rfind("--intra-workers=", 0) == 0) {
      intra_workers = std::atoi(argv[i] + sizeof("--intra-workers=") - 1);
      if (intra_workers < 1) {
        std::cerr << "bad --intra-workers value: " << arg << "\n";
        return 1;
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const IncrementalProbe probe = run_incremental_probe();
  std::cout << "\n== incremental evaluation probe (multi_site(24)) ==\n";
  std::printf("full recompute:  %.1f ms (total cost %.0f)\n",
              probe.before.solve_ms, probe.before.total_cost);
  std::printf("incremental:     %.1f ms (total cost %.0f), "
              "%lld simulated / %lld reused\n",
              probe.after.solve_ms, probe.after.total_cost,
              static_cast<long long>(
                  probe.after.stats.incremental.scenarios_simulated),
              static_cast<long long>(
                  probe.after.stats.incremental.scenarios_reused));
  std::printf("speedup: %.2fx, totals %s\n", probe.speedup(),
              probe.totals_match() ? "match" : "MISMATCH");

  const ParallelRefitProbe refit =
      run_parallel_refit_probe(intra_workers, smoke ? 1 : 3);
  std::cout << "\n== parallel-refit probe (multi_site(24,6,8)) ==\n";
  std::printf("sequential:      %.1f ms (total cost %.0f, %lld nodes)\n",
              refit.sequential.solve_ms, refit.sequential.total_cost,
              static_cast<long long>(refit.sequential.nodes_evaluated));
  std::printf("intra-workers=%d: %.1f ms (total cost %.0f, "
              "%lld tasks / %lld stolen)\n",
              refit.intra_workers, refit.parallel.solve_ms,
              refit.parallel.total_cost,
              static_cast<long long>(refit.parallel.parallel_tasks),
              static_cast<long long>(refit.parallel.steal_count));
  std::printf("auto min-fan (calibrated to %d): %.1f ms (%s)\n",
              refit.guarded.min_fan_used, refit.guarded.solve_ms,
              refit.guarded.fanned ? "fanned" : "ran inline");
  std::printf("speedup: forced-fan %.2fx, auto %.2fx, totals %s\n",
              refit.speedup(), refit.guarded_speedup(),
              refit.totals_match() ? "match" : "MISMATCH");

  // Scale probes: the same seq-vs-forced comparison at growing environment
  // size. Iteration counts shrink with scale to keep smoke runs bounded —
  // speedup is a ratio within one probe, so the legs stay comparable.
  struct ScaleSpec {
    const char* name;
    int apps, sites, links, iters;
  };
  // Sites double with apps: each site caps out at 2 disk arrays, so 96 apps
  // need 24 sites to stay feasible under the baseline catalog.
  const ScaleSpec scale_specs[] = {
      {"multi_site(24,6,8)", 24, 6, 8, 8},
      {"multi_site(48,12,8)", 48, 12, 8, smoke ? 2 : 4},
      {"multi_site(96,24,8)", 96, 24, 8, smoke ? 1 : 2},
  };
  std::vector<ScaleProbe> scale;
  std::cout << "\n== parallel-refit scale probes ==\n";
  for (const ScaleSpec& spec : scale_specs) {
    const Environment env =
        scenarios::multi_site(spec.apps, spec.sites, spec.links);
    scale.push_back(run_scale_probe(spec.name, env, spec.iters,
                                    intra_workers, smoke ? 1 : 3, sweep));
    const ScaleProbe& p = scale.back();
    std::printf("%-22s seq %.1f ms, %d workers %.1f ms — %.2fx, totals %s\n",
                p.environment.c_str(), p.sequential.solve_ms,
                p.intra_workers, p.parallel.solve_ms, p.speedup(),
                p.totals_match() ? "match" : "MISMATCH");
    if (sweep) {
      for (const WorkerPoint& pt : p.curve) {
        std::printf("    workers=%d: %.1f ms (%.2fx)\n", pt.workers,
                    pt.solve_ms, pt.speedup);
      }
    }
  }

  const ServeProbe serve_probe = run_serve_probe(8, smoke ? 2 : 8);
  std::cout << "\n== serve probe (8 loopback clients) ==\n";
  std::printf("%d/%d requests completed (%d errors) in %.1f ms — "
              "%.1f jobs/sec, p50 %.1f ms, p95 %.1f ms\n",
              serve_probe.completed,
              serve_probe.clients * serve_probe.requests_per_client,
              serve_probe.errors, serve_probe.elapsed_ms,
              serve_probe.jobs_per_sec(), serve_probe.p50_ms,
              serve_probe.p95_ms);

  const ChurnProbe churn = run_churn_probe(50);
  std::cout << "\n== churn probe (multi_site(24,6,8), 50 steps) ==\n";
  std::printf("warm resolve:    %.1f ms total (%d/%d steps warm, "
              "%lld apps touched)\n",
              churn.warm_ms, churn.warm_steps, churn.steps,
              static_cast<long long>(churn.touched_apps));
  std::printf("cold solve:      %.1f ms total\n", churn.cold_ms);
  std::printf("speedup: %.2fx, totals %s\n", churn.speedup(),
              churn.totals_match ? "match" : "MISMATCH");

  const CorrelationProbe corr = run_correlation_probe(smoke);
  std::cout << "\n== correlation probe ==\n";
  std::printf("flat eval:       %.1f ms, degenerate tree: %.1f ms "
              "(%.2fx overhead), totals %s\n",
              corr.flat_eval_ms, corr.tree_eval_ms, corr.overhead(),
              corr.totals_match ? "match" : "MISMATCH");
  for (const CorrelationSweepPoint& pt : corr.sweep) {
    std::printf("correlation %5.1f: %d cross-region mirrors "
                "(total cost %.0f)\n",
                pt.correlation, pt.cross_region_mirrors, pt.total_cost);
  }
  std::printf("design %s with correlation\n",
              corr.design_shifted() ? "shifted cross-region"
                                    : "did NOT shift");

  const EngineMetricsSnapshot metrics = run_engine_probe(smoke ? 2 : 8);
  std::cout << "\n== batch-engine probe ==\n" << metrics.render();
  write_perf_json("BENCH_solver_perf.json", probe, refit, scale, serve_probe,
                  churn, corr, metrics);
  std::cout << "wrote BENCH_solver_perf.json\n";
  bool scale_totals = true;
  for (const ScaleProbe& p : scale) scale_totals &= p.totals_match();
  return probe.totals_match() && refit.totals_match() && scale_totals &&
                 churn.totals_match && corr.totals_match &&
                 serve_probe.errors == 0 &&
                 serve_probe.completed ==
                     serve_probe.clients * serve_probe.requests_per_client
             ? 0
             : 1;
}
