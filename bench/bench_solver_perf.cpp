// Solver kernel throughput (google-benchmark).
//
// Not a paper artifact: these microbenchmarks size the evaluation budget —
// how many candidate evaluations, recovery simulations, and reconfiguration
// moves per second the search heuristics get to spend. Useful when tuning
// the time budgets of the figure harnesses.
//
// After the microbenchmarks the harness runs (1) an incremental-evaluation
// probe — the same ConfigSolver workload on the largest bundled environment
// with the incremental path disabled (pre-optimization behavior) and enabled
// — and (2) a short batch-engine probe (an 8-job sensitivity-style batch on
// the hardware's worker count). The headline numbers — before/after solve
// times and speedup, scenario reuse counters, per-stage timings, jobs/sec,
// nodes/sec, evaluation-cache hit rate — go to BENCH_solver_perf.json so CI
// and tuning scripts can diff them.
//
// A third probe exercises the intra-solve parallel refit search: the same
// deterministic single-solve workload on multi_site(24,6,8) run sequentially
// (--intra-workers implied 1) and with the refit fan on N threads
// (`--intra-workers=N`, default 4). The determinism contract makes the two
// legs comparable: total costs must match bit-for-bit, and the JSON gains a
// "parallel_refit" section with both timings, the speedup, and the
// task/steal counters. The process exit code asserts `totals_match` for both
// the incremental and the parallel-refit probes.
//
// `--smoke` (the CI mode) skips the google-benchmark microbenchmarks and
// shrinks the engine probe, but still runs every probe and writes the JSON.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string_view>
#include <vector>

#include "core/api.hpp"
#include "core/scenarios.hpp"
#include "engine/engine.hpp"
#include "model/recovery_sim.hpp"
#include "solver/config_solver.hpp"
#include "solver/design_solver.hpp"
#include "solver/reconfigure.hpp"
#include "util/json.hpp"
#include "test_helpers_bench.hpp"

namespace {

using namespace depstor;

/// Fully-placed peer-sites candidate used as the evaluation workload.
Candidate placed_candidate(const Environment& env) {
  Candidate cand(&env);
  Rng rng(99);
  Reconfigurator rec(&env, &rng);
  for (int i = 0; i < static_cast<int>(env.apps.size()); ++i) {
    if (!rec.reconfigure_app(cand, i)) {
      throw InfeasibleError("bench setup could not place app");
    }
  }
  return cand;
}

void BM_CandidateEvaluate(benchmark::State& state) {
  // Peer sites fit ≤8 failover-capable apps (8 compute slots per site);
  // larger counts use the 4-site environment.
  const int apps = static_cast<int>(state.range(0));
  const Environment env =
      apps <= 8 ? scenarios::peer_sites(apps) : scenarios::multi_site(apps);
  const Candidate cand = placed_candidate(env);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cand.evaluate().total());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CandidateEvaluate)->Arg(4)->Arg(8)->Arg(16);

void BM_RecoverySimulation(benchmark::State& state) {
  const Environment env =
      scenarios::peer_sites(static_cast<int>(state.range(0)));
  const Candidate cand = placed_candidate(env);
  const auto scenarios_list = enumerate_scenarios(
      env.apps, cand.assignments(), cand.pool(), env.failures);
  for (auto _ : state) {
    for (const auto& s : scenarios_list) {
      benchmark::DoNotOptimize(simulate_recovery(
          s, env.apps, cand.assignments(), cand.pool(), env.params));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(scenarios_list.size()));
}
BENCHMARK(BM_RecoverySimulation)->Arg(4)->Arg(8);

void BM_ConfigSolver(benchmark::State& state) {
  const Environment env =
      scenarios::peer_sites(static_cast<int>(state.range(0)));
  const Candidate base = placed_candidate(env);
  ConfigSolver solver(&env);
  for (auto _ : state) {
    Candidate cand = base;
    benchmark::DoNotOptimize(solver.solve(cand).total());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ConfigSolver)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ReconfigureMove(benchmark::State& state) {
  const Environment env = scenarios::peer_sites(8);
  Candidate cand = placed_candidate(env);
  Rng rng(7);
  Reconfigurator rec(&env, &rng);
  const CostBreakdown cost = cand.evaluate();
  for (auto _ : state) {
    const int app = rec.pick_app_to_reconfigure(cand, cost);
    benchmark::DoNotOptimize(rec.reconfigure_app(cand, app));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ReconfigureMove)->Unit(benchmark::kMillisecond);

void BM_PlaceRemoveApp(benchmark::State& state) {
  const Environment env = scenarios::peer_sites(1);
  Candidate cand(&env);
  const DesignChoice choice =
      bench_testing::full_protection_choice();
  for (auto _ : state) {
    cand.place_app(0, choice);
    cand.remove_app(0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PlaceRemoveApp);

void BM_FullDesignSolve(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Environment env = scenarios::peer_sites(8);
    state.ResumeTiming();
    SolveRequest request;
    request.env = &env;
    request.options.time_budget_ms = 1e9;  // bounded by repetitions instead
    request.options.max_repetitions = 1;
    request.options.max_refit_iterations = 1;
    request.options.seed = 5;
    benchmark::DoNotOptimize(solve(request).feasible);
  }
}
BENCHMARK(BM_FullDesignSolve)->Unit(benchmark::kMillisecond);

/// One leg of the incremental-evaluation probe: the full ConfigSolver pass
/// on a fixed candidate with the incremental path on or off.
struct ProbeLeg {
  double solve_ms = 0.0;
  double total_cost = 0.0;
  ConfigSolverStats stats;
};

/// Before/after comparison on the largest bundled environment
/// (multi_site(24)): identical workload, identical results, the only
/// difference is the evaluation path. "before" (incremental disabled) is the
/// pre-optimization behavior — every probe re-simulates every scenario.
struct IncrementalProbe {
  ProbeLeg before;  ///< full recompute per evaluation
  ProbeLeg after;   ///< dirty-tracked incremental evaluation
  double speedup() const {
    return after.solve_ms > 0.0 ? before.solve_ms / after.solve_ms : 0.0;
  }
  bool totals_match() const {
    return before.total_cost == after.total_cost;
  }
};

ProbeLeg run_probe_leg(const Environment& env, const Candidate& base,
                       bool incremental) {
  // Best of several repetitions: one solve is ~10 ms, well inside the
  // scheduler/frequency noise floor, and the solve is deterministic — the
  // minimum is the honest estimate of each leg's cost.
  constexpr int kRepetitions = 3;
  ProbeLeg best;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    Candidate cand = base;
    cand.set_incremental_enabled(incremental);
    ConfigSolver solver(&env);
    ProbeLeg leg;
    const auto t0 = std::chrono::steady_clock::now();
    leg.total_cost = solver.solve(cand).total();
    leg.solve_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    leg.stats = solver.stats();
    if (rep == 0 || leg.solve_ms < best.solve_ms) best = leg;
  }
  return best;
}

IncrementalProbe run_incremental_probe() {
  const Environment env = scenarios::multi_site(24, 6, 8);
  const Candidate base = placed_candidate(env);
  IncrementalProbe probe;
  probe.before = run_probe_leg(env, base, /*incremental=*/false);
  probe.after = run_probe_leg(env, base, /*incremental=*/true);
  return probe;
}

/// One leg of the parallel-refit probe: a fixed deterministic single solve
/// of the largest bundled environment with the refit fan on `intra_workers`
/// threads. Fixed work (one repetition, deterministic — no wall-clock
/// cutoffs), so the node set and the final cost are identical for every
/// worker count by the DESIGN.md §9 contract.
struct RefitLeg {
  double solve_ms = 0.0;
  double total_cost = 0.0;
  std::int64_t nodes_evaluated = 0;
  std::int64_t parallel_tasks = 0;
  std::int64_t steal_count = 0;
};

struct ParallelRefitProbe {
  int intra_workers = 4;
  RefitLeg sequential;  ///< intra_workers = 1
  RefitLeg parallel;    ///< intra_workers = N
  double speedup() const {
    return parallel.solve_ms > 0.0 ? sequential.solve_ms / parallel.solve_ms
                                   : 0.0;
  }
  bool totals_match() const {
    return sequential.total_cost == parallel.total_cost &&
           sequential.nodes_evaluated == parallel.nodes_evaluated;
  }
};

RefitLeg run_refit_leg(const Environment& env, int intra_workers,
                       int repetitions) {
  // Best of `repetitions`: the solve is deterministic, so the minimum is the
  // honest estimate of each leg's cost (same rationale as the incremental
  // probe).
  RefitLeg best;
  for (int rep = 0; rep < repetitions; ++rep) {
    SolveRequest request;
    request.env = &env;
    request.options.seed = 42;
    request.options.max_repetitions = 1;
    // Deterministic fixed work: enough refit iterations to exercise the fan
    // well past warm-up, few enough to keep the probe in CI-smoke range.
    request.options.max_refit_iterations = 8;
    request.exec.deterministic = true;
    request.exec.intra_node_workers = intra_workers;
    RefitLeg leg;
    const auto t0 = std::chrono::steady_clock::now();
    const SolveResult result = solve(request);
    leg.solve_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    if (!result.feasible) {
      throw InfeasibleError("parallel-refit probe found no feasible design");
    }
    leg.total_cost = result.cost.total();
    leg.nodes_evaluated = result.nodes_evaluated;
    leg.parallel_tasks = result.refit_parallel_tasks;
    leg.steal_count = result.refit_steal_count;
    if (rep == 0 || leg.solve_ms < best.solve_ms) best = leg;
  }
  return best;
}

ParallelRefitProbe run_parallel_refit_probe(int intra_workers,
                                            int repetitions) {
  const Environment env = scenarios::multi_site(24, 6, 8);
  ParallelRefitProbe probe;
  probe.intra_workers = intra_workers;
  probe.sequential = run_refit_leg(env, 1, repetitions);
  probe.parallel = run_refit_leg(env, intra_workers, repetitions);
  return probe;
}

/// Batch-engine probe: a fixed `job_count`-job sweep (16 apps, rates
/// varied) on the machine's worker count, fixed work per job so the numbers
/// are comparable run to run. Returns the engine's aggregate metrics.
EngineMetricsSnapshot run_engine_probe(int job_count) {
  std::vector<DesignJob> jobs;
  for (int i = 0; i < job_count; ++i) {
    Environment env = scenarios::multi_site(16, 4, 6);
    env.failures = FailureModel::sensitivity_baseline();
    env.failures.data_object_rate = 0.5 * (i + 1);
    DesignSolverOptions o;
    o.time_budget_ms = 1e9;  // bounded by repetitions: fixed work per job
    o.max_repetitions = 1;
    o.seed = 42;
    jobs.push_back(
        DesignJob::make(std::move(env), o, "probe-" + std::to_string(i)));
  }
  EngineOptions engine;
  engine.seed = 42;
  return run_batch(std::move(jobs), engine).metrics;
}

void write_probe_leg(JsonWriter& w, const ProbeLeg& leg) {
  const auto& inc = leg.stats.incremental;
  const std::int64_t scenario_total =
      inc.scenarios_simulated + inc.scenarios_reused;
  w.begin_object()
      .field("solve_ms", leg.solve_ms)
      .field("total_cost", leg.total_cost)
      .field("evaluations", static_cast<long long>(leg.stats.evaluations))
      .field("eval_ms", leg.stats.eval_ms)
      .field("sweep_ms", leg.stats.sweep_ms)
      .field("increment_ms", leg.stats.increment_ms)
      .field("scenarios_simulated",
             static_cast<long long>(inc.scenarios_simulated))
      .field("scenarios_reused", static_cast<long long>(inc.scenarios_reused))
      .field("scenario_reuse_rate",
             scenario_total > 0
                 ? static_cast<double>(inc.scenarios_reused) /
                       static_cast<double>(scenario_total)
                 : 0.0)
      .end_object();
}

void write_perf_json(const char* path, const IncrementalProbe& probe,
                     const ParallelRefitProbe& refit,
                     const EngineMetricsSnapshot& m) {
  JsonWriter w;
  w.begin_object();
  w.key("incremental")
      .begin_object()
      .field("environment", "multi_site(24,6,8)")
      .field("speedup", probe.speedup())
      .field("totals_match", probe.totals_match());
  w.key("before");
  write_probe_leg(w, probe.before);
  w.key("after");
  write_probe_leg(w, probe.after);
  w.end_object();
  w.key("parallel_refit")
      .begin_object()
      .field("environment", "multi_site(24,6,8)")
      .field("intra_workers", static_cast<long long>(refit.intra_workers))
      .field("seq_ms", refit.sequential.solve_ms)
      .field("par_ms", refit.parallel.solve_ms)
      .field("speedup", refit.speedup())
      .field("totals_match", refit.totals_match())
      .field("total_cost", refit.sequential.total_cost)
      .field("nodes_evaluated",
             static_cast<long long>(refit.sequential.nodes_evaluated))
      .field("parallel_tasks",
             static_cast<long long>(refit.parallel.parallel_tasks))
      .field("steal_count",
             static_cast<long long>(refit.parallel.steal_count))
      .end_object();
  w.key("engine_probe")
      .begin_object()
      .field("jobs", static_cast<long long>(m.jobs_completed))
      .field("elapsed_ms", m.elapsed_ms)
      .field("jobs_per_sec", m.jobs_per_sec())
      .field("nodes_evaluated", static_cast<long long>(m.nodes_evaluated))
      .field("nodes_per_sec", m.nodes_per_sec())
      .field("evaluations", static_cast<long long>(m.evaluations))
      .field("scenarios_simulated",
             static_cast<long long>(m.scenarios_simulated))
      .field("scenarios_reused", static_cast<long long>(m.scenarios_reused))
      .field("cache_hits", static_cast<long long>(m.cache.hits))
      .field("cache_misses", static_cast<long long>(m.cache.misses))
      .field("cache_hit_rate", m.cache.hit_rate())
      .field("p50_job_ms", m.p50_job_ms)
      .field("p95_job_ms", m.p95_job_ms)
      .end_object();
  w.end_object();
  std::ofstream file(path);
  file << w.str() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // `--smoke` and `--intra-workers=N` are ours, not google-benchmark's:
  // strip them before Initialize.
  bool smoke = false;
  int intra_workers = 4;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    if (arg.rfind("--intra-workers=", 0) == 0) {
      intra_workers = std::atoi(argv[i] + sizeof("--intra-workers=") - 1);
      if (intra_workers < 1) {
        std::cerr << "bad --intra-workers value: " << arg << "\n";
        return 1;
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const IncrementalProbe probe = run_incremental_probe();
  std::cout << "\n== incremental evaluation probe (multi_site(24)) ==\n";
  std::printf("full recompute:  %.1f ms (total cost %.0f)\n",
              probe.before.solve_ms, probe.before.total_cost);
  std::printf("incremental:     %.1f ms (total cost %.0f), "
              "%lld simulated / %lld reused\n",
              probe.after.solve_ms, probe.after.total_cost,
              static_cast<long long>(
                  probe.after.stats.incremental.scenarios_simulated),
              static_cast<long long>(
                  probe.after.stats.incremental.scenarios_reused));
  std::printf("speedup: %.2fx, totals %s\n", probe.speedup(),
              probe.totals_match() ? "match" : "MISMATCH");

  const ParallelRefitProbe refit =
      run_parallel_refit_probe(intra_workers, smoke ? 1 : 3);
  std::cout << "\n== parallel-refit probe (multi_site(24,6,8)) ==\n";
  std::printf("sequential:      %.1f ms (total cost %.0f, %lld nodes)\n",
              refit.sequential.solve_ms, refit.sequential.total_cost,
              static_cast<long long>(refit.sequential.nodes_evaluated));
  std::printf("intra-workers=%d: %.1f ms (total cost %.0f, "
              "%lld tasks / %lld stolen)\n",
              refit.intra_workers, refit.parallel.solve_ms,
              refit.parallel.total_cost,
              static_cast<long long>(refit.parallel.parallel_tasks),
              static_cast<long long>(refit.parallel.steal_count));
  std::printf("speedup: %.2fx, totals %s\n", refit.speedup(),
              refit.totals_match() ? "match" : "MISMATCH");

  const EngineMetricsSnapshot metrics = run_engine_probe(smoke ? 2 : 8);
  std::cout << "\n== batch-engine probe ==\n" << metrics.render();
  write_perf_json("BENCH_solver_perf.json", probe, refit, metrics);
  std::cout << "wrote BENCH_solver_perf.json\n";
  return probe.totals_match() && refit.totals_match() ? 0 : 1;
}
