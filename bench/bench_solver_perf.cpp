// Solver kernel throughput (google-benchmark).
//
// Not a paper artifact: these microbenchmarks size the evaluation budget —
// how many candidate evaluations, recovery simulations, and reconfiguration
// moves per second the search heuristics get to spend. Useful when tuning
// the time budgets of the figure harnesses.
//
// After the microbenchmarks the harness runs a short batch-engine probe (an
// 8-job sensitivity-style batch on the hardware's worker count) and writes
// the headline numbers — jobs/sec, nodes/sec, evaluation-cache hit rate —
// to BENCH_solver_perf.json so CI and tuning scripts can diff them.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "core/scenarios.hpp"
#include "engine/engine.hpp"
#include "model/recovery_sim.hpp"
#include "solver/config_solver.hpp"
#include "solver/design_solver.hpp"
#include "solver/reconfigure.hpp"
#include "util/json.hpp"
#include "test_helpers_bench.hpp"

namespace {

using namespace depstor;

/// Fully-placed peer-sites candidate used as the evaluation workload.
Candidate placed_candidate(const Environment& env) {
  Candidate cand(&env);
  Rng rng(99);
  Reconfigurator rec(&env, &rng);
  for (int i = 0; i < static_cast<int>(env.apps.size()); ++i) {
    if (!rec.reconfigure_app(cand, i)) {
      throw InfeasibleError("bench setup could not place app");
    }
  }
  return cand;
}

void BM_CandidateEvaluate(benchmark::State& state) {
  // Peer sites fit ≤8 failover-capable apps (8 compute slots per site);
  // larger counts use the 4-site environment.
  const int apps = static_cast<int>(state.range(0));
  const Environment env =
      apps <= 8 ? scenarios::peer_sites(apps) : scenarios::multi_site(apps);
  const Candidate cand = placed_candidate(env);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cand.evaluate().total());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CandidateEvaluate)->Arg(4)->Arg(8)->Arg(16);

void BM_RecoverySimulation(benchmark::State& state) {
  const Environment env =
      scenarios::peer_sites(static_cast<int>(state.range(0)));
  const Candidate cand = placed_candidate(env);
  const auto scenarios_list = enumerate_scenarios(
      env.apps, cand.assignments(), cand.pool(), env.failures);
  for (auto _ : state) {
    for (const auto& s : scenarios_list) {
      benchmark::DoNotOptimize(simulate_recovery(
          s, env.apps, cand.assignments(), cand.pool(), env.params));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(scenarios_list.size()));
}
BENCHMARK(BM_RecoverySimulation)->Arg(4)->Arg(8);

void BM_ConfigSolver(benchmark::State& state) {
  const Environment env =
      scenarios::peer_sites(static_cast<int>(state.range(0)));
  const Candidate base = placed_candidate(env);
  ConfigSolver solver(&env);
  for (auto _ : state) {
    Candidate cand = base;
    benchmark::DoNotOptimize(solver.solve(cand).total());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ConfigSolver)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ReconfigureMove(benchmark::State& state) {
  const Environment env = scenarios::peer_sites(8);
  Candidate cand = placed_candidate(env);
  Rng rng(7);
  Reconfigurator rec(&env, &rng);
  const CostBreakdown cost = cand.evaluate();
  for (auto _ : state) {
    const int app = rec.pick_app_to_reconfigure(cand, cost);
    benchmark::DoNotOptimize(rec.reconfigure_app(cand, app));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ReconfigureMove)->Unit(benchmark::kMillisecond);

void BM_PlaceRemoveApp(benchmark::State& state) {
  const Environment env = scenarios::peer_sites(1);
  Candidate cand(&env);
  const DesignChoice choice =
      bench_testing::full_protection_choice();
  for (auto _ : state) {
    cand.place_app(0, choice);
    cand.remove_app(0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PlaceRemoveApp);

void BM_FullDesignSolve(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Environment env = scenarios::peer_sites(8);
    state.ResumeTiming();
    DesignSolverOptions o;
    o.time_budget_ms = 1e9;  // bounded by repetitions instead
    o.max_repetitions = 1;
    o.max_refit_iterations = 1;
    o.seed = 5;
    DesignSolver solver(&env, o);
    benchmark::DoNotOptimize(solver.solve().feasible);
  }
}
BENCHMARK(BM_FullDesignSolve)->Unit(benchmark::kMillisecond);

/// Batch-engine probe: a fixed 8-job sweep (16 apps, rates varied) on the
/// machine's worker count, fixed work per job so the numbers are comparable
/// run to run. Returns the engine's aggregate metrics.
EngineMetricsSnapshot run_engine_probe() {
  std::vector<DesignJob> jobs;
  for (int i = 0; i < 8; ++i) {
    Environment env = scenarios::multi_site(16, 4, 6);
    env.failures = FailureModel::sensitivity_baseline();
    env.failures.data_object_rate = 0.5 * (i + 1);
    DesignSolverOptions o;
    o.time_budget_ms = 1e9;  // bounded by repetitions: fixed work per job
    o.max_repetitions = 1;
    o.seed = 42;
    jobs.push_back(
        DesignJob::make(std::move(env), o, "probe-" + std::to_string(i)));
  }
  EngineOptions engine;
  engine.seed = 42;
  return run_batch(std::move(jobs), engine).metrics;
}

void write_perf_json(const char* path, const EngineMetricsSnapshot& m) {
  JsonWriter w;
  w.begin_object();
  w.key("engine_probe")
      .begin_object()
      .field("jobs", static_cast<long long>(m.jobs_completed))
      .field("elapsed_ms", m.elapsed_ms)
      .field("jobs_per_sec", m.jobs_per_sec())
      .field("nodes_evaluated", static_cast<long long>(m.nodes_evaluated))
      .field("nodes_per_sec", m.nodes_per_sec())
      .field("evaluations", static_cast<long long>(m.evaluations))
      .field("cache_hits", static_cast<long long>(m.cache.hits))
      .field("cache_misses", static_cast<long long>(m.cache.misses))
      .field("cache_hit_rate", m.cache.hit_rate())
      .field("p50_job_ms", m.p50_job_ms)
      .field("p95_job_ms", m.p95_job_ms)
      .end_object();
  w.end_object();
  std::ofstream file(path);
  file << w.str() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const EngineMetricsSnapshot metrics = run_engine_probe();
  std::cout << "\n== batch-engine probe ==\n" << metrics.render();
  write_perf_json("BENCH_solver_perf.json", metrics);
  std::cout << "wrote BENCH_solver_perf.json\n";
  return 0;
}
