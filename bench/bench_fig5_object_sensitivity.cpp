// Figure 5: design tool solution cost vs the likelihood of data object
// failure, swept from twice a year to once in ten years (paper §4.5).
//
// Expected shape: cost grows with the rate; beyond a threshold the solver
// can no longer compensate with extra resources because the loss floor of
// the freshest point-in-time copy scales linearly with the rate.
//
//   ./bench_fig5_object_sensitivity [--apps=16] [--sites=4] [--links=6]
//                                   [--time-budget-ms=1500] [--seed=42]
//                                   [--csv]
#include "bench_sensitivity_common.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  using namespace depstor::bench;
  try {
    const CliFlags flags(argc, argv);
    const auto cfg = HarnessConfig::from_flags(flags);
    const int apps = flags.get_int("apps", 16);
    const int sites = flags.get_int("sites", 4);
    const int links = flags.get_int("links", 6);
    flags.reject_unknown();

    const std::vector<SweepPoint> points = {
        {"2 / yr", 2.0},      {"1 / yr", 1.0},      {"1 / 2 yr", 0.5},
        {"1 / 3 yr", 1.0 / 3}, {"1 / 5 yr", 0.2},   {"1 / 10 yr", 0.1},
    };
    run_sensitivity_sweep("Figure 5", "data object failure likelihood",
                          points, cfg, apps, sites, links,
                          [](FailureModel& f, double rate) {
                            f.data_object_rate = rate;
                          });
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
