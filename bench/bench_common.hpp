// Shared helpers for the experiment harnesses (bench_fig*/bench_table*).
//
// Each harness reproduces one table or figure from the paper. They are
// standalone binaries (not google-benchmark: the paper's artifacts are cost
// comparisons, not timings) that print the same rows/series the paper
// reports, with CLI flags to scale the run budgets.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "analysis/diagnostics.hpp"
#include "core/design_tool.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace depstor::bench {

/// Budgets shared by every harness, parsed from common flags:
///   --time-budget-ms (per heuristic), --csv, and the unified execution
///   flags (util/cli's parse_execution_flags): --seed, --deterministic,
///   --intra-workers, and the batch-engine path: --engine [--workers=N]
///   routes the harness's design-solver sweep through a BatchEngine
///   (N workers; 0 = hardware), solving every point concurrently with a
///   shared evaluation cache. The pre-unification --engine-workers spelling
///   still parses but warns with `removed-cli-flag`.
struct HarnessConfig {
  double time_budget_ms = 1500.0;
  std::uint64_t seed = 42;
  bool csv = false;
  bool use_engine = false;
  int engine_workers = 0;  ///< 0 = one per hardware thread
  int intra_workers = 1;   ///< refit threads inside each solve
  bool deterministic = false;

  static HarnessConfig from_flags(const CliFlags& flags) {
    HarnessConfig cfg;
    ExecutionFlags defaults;
    defaults.workers = 0;
    defaults.seed = 42;
    analysis::DiagnosticReport report;
    const ExecutionFlags ef = parse_execution_flags(flags, &report, defaults);
    for (const auto& d : report.diagnostics()) std::cerr << d.render() << "\n";
    cfg.time_budget_ms = flags.get_double("time-budget-ms", 1500.0);
    cfg.seed = ef.seed;
    cfg.csv = flags.get_bool("csv", false);
    cfg.engine_workers = ef.workers;
    cfg.intra_workers = ef.intra_workers;
    cfg.deterministic = ef.deterministic;
    cfg.use_engine = flags.get_bool("engine", false) || cfg.engine_workers > 0;
    return cfg;
  }

  EngineOptions engine_options() const {
    EngineOptions o;
    o.workers = engine_workers;
    o.seed = seed;
    return o;
  }

  DesignSolverOptions solver_options() const {
    DesignSolverOptions o;
    o.time_budget_ms = time_budget_ms;
    o.seed = seed;
    return o;
  }

  ExecutionOptions exec_options() const {
    ExecutionOptions o;
    o.intra_node_workers = intra_workers;
    o.deterministic = deterministic;
    return o;
  }

  BaselineOptions baseline_options() const {
    BaselineOptions o;
    o.time_budget_ms = time_budget_ms;
    o.seed = seed;
    return o;
  }
};

inline void print_table(const Table& table, bool csv) {
  std::cout << (csv ? table.render_csv() : table.render());
}

/// Ratio cell "x1.93" or "-" when the base is missing.
inline std::string ratio(double value, double base) {
  if (base <= 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "x%.2f", value / base);
  return buf;
}

}  // namespace depstor::bench
