// Shared helpers for the experiment harnesses (bench_fig*/bench_table*).
//
// Each harness reproduces one table or figure from the paper. They are
// standalone binaries (not google-benchmark: the paper's artifacts are cost
// comparisons, not timings) that print the same rows/series the paper
// reports, with CLI flags to scale the run budgets.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "core/design_tool.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace depstor::bench {

/// Budgets shared by every harness, parsed from common flags:
///   --time-budget-ms (per heuristic), --seed, --csv
struct HarnessConfig {
  double time_budget_ms = 1500.0;
  std::uint64_t seed = 42;
  bool csv = false;

  static HarnessConfig from_flags(const CliFlags& flags) {
    HarnessConfig cfg;
    cfg.time_budget_ms = flags.get_double("time-budget-ms", 1500.0);
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    cfg.csv = flags.get_bool("csv", false);
    return cfg;
  }

  DesignSolverOptions solver_options() const {
    DesignSolverOptions o;
    o.time_budget_ms = time_budget_ms;
    o.seed = seed;
    return o;
  }

  BaselineOptions baseline_options() const {
    BaselineOptions o;
    o.time_budget_ms = time_budget_ms;
    o.seed = seed;
    return o;
  }
};

inline void print_table(const Table& table, bool csv) {
  std::cout << (csv ? table.render_csv() : table.render());
}

/// Ratio cell "x1.93" or "-" when the base is missing.
inline std::string ratio(double value, double base) {
  if (base <= 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "x%.2f", value / base);
  return buf;
}

}  // namespace depstor::bench
