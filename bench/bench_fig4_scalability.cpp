// Figure 4: scalability of the three heuristics over four fully connected
// sites, applications scaled four at a time — one per Table 1 class
// (paper §4.4).
//
// Expected shape: the design tool is consistently cheapest (2-3X in the
// paper; larger here — see EXPERIMENTS.md); past a scale threshold the
// guided searches (design solver, human) fail to find feasible designs in
// the fixed-resource environment while the random generator still does.
//
//   ./bench_fig4_scalability [--min-apps=4] [--max-apps=24] [--step=4]
//                            [--sites=4] [--links=6] [--time-budget-ms=1500]
//                            [--seed=42] [--csv]
#include "bench_common.hpp"
#include "core/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  using namespace depstor::bench;
  try {
    const CliFlags flags(argc, argv);
    const auto cfg = HarnessConfig::from_flags(flags);
    const int min_apps = flags.get_int("min-apps", 4);
    const int max_apps = flags.get_int("max-apps", 24);
    const int step = flags.get_int("step", 4);
    const int sites = flags.get_int("sites", 4);
    const int links = flags.get_int("links", 6);
    flags.reject_unknown();

    std::cout << "== Figure 4: scalability, " << sites
              << " fully connected sites, " << cfg.time_budget_ms
              << " ms/heuristic ==\n\n";
    Table table({"Apps", "Design tool", "Human heuristic", "Random heuristic",
                 "Human vs tool", "Random vs tool"});

    for (int apps = min_apps; apps <= max_apps; apps += step) {
      DesignTool tool(scenarios::multi_site(apps, sites, links));
      const auto solver = tool.design(cfg.solver_options());
      const auto human = tool.design_human(cfg.baseline_options());
      const auto random = tool.design_random(cfg.baseline_options());

      auto cell = [](bool feasible, const CostBreakdown& cost) {
        return feasible ? Table::money(cost.total())
                        : std::string("infeasible");
      };
      table.add_row(
          {std::to_string(apps), cell(solver.feasible, solver.cost),
           cell(human.feasible, human.cost),
           cell(random.feasible, random.cost),
           solver.feasible && human.feasible
               ? ratio(human.cost.total(), solver.cost.total())
               : "-",
           solver.feasible && random.feasible
               ? ratio(random.cost.total(), solver.cost.total())
               : "-"});
    }
    print_table(table, cfg.csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
