// Figure 4: scalability of the three heuristics over four fully connected
// sites, applications scaled four at a time — one per Table 1 class
// (paper §4.4).
//
// Expected shape: the design tool is consistently cheapest (2-3X in the
// paper; larger here — see EXPERIMENTS.md); past a scale threshold the
// guided searches (design solver, human) fail to find feasible designs in
// the fixed-resource environment while the random generator still does.
//
//   ./bench_fig4_scalability [--min-apps=4] [--max-apps=24] [--step=4]
//                            [--sites=4] [--links=6] [--time-budget-ms=1500]
//                            [--seed=42] [--csv]
#include "bench_common.hpp"
#include "core/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  using namespace depstor::bench;
  try {
    const CliFlags flags(argc, argv);
    const auto cfg = HarnessConfig::from_flags(flags);
    const int min_apps = flags.get_int("min-apps", 4);
    const int max_apps = flags.get_int("max-apps", 24);
    const int step = flags.get_int("step", 4);
    const int sites = flags.get_int("sites", 4);
    const int links = flags.get_int("links", 6);
    flags.reject_unknown();

    std::cout << "== Figure 4: scalability, " << sites
              << " fully connected sites, " << cfg.time_budget_ms
              << " ms/heuristic"
              << (cfg.use_engine ? ", batch engine" : "") << " ==\n\n";
    Table table({"Apps", "Design tool", "Human heuristic", "Random heuristic",
                 "Human vs tool", "Random vs tool"});

    std::vector<int> app_counts;
    for (int apps = min_apps; apps <= max_apps; apps += step) {
      app_counts.push_back(apps);
    }

    // Design-solver runs, one per app count. With --engine all scales are
    // solved concurrently with a shared evaluation cache; the human/random
    // baselines stay sequential (they are cheap by comparison).
    std::vector<SolveResult> solver_results;
    if (cfg.use_engine) {
      std::vector<DesignJob> jobs;
      for (int apps : app_counts) {
        DesignJob job = DesignJob::make(scenarios::multi_site(apps, sites, links),
                                        cfg.solver_options(),
                                        "apps-" + std::to_string(apps));
        job.derive_seed = false;  // same seed per scale, as the sequential path
        jobs.push_back(std::move(job));
      }
      BatchReport report =
          DesignTool::design_batch(std::move(jobs), cfg.engine_options());
      for (auto& r : report.results) {
        solver_results.push_back(std::move(r.solve));
      }
      std::cout << report.metrics.render() << "\n";
    } else {
      for (int apps : app_counts) {
        DesignTool tool(scenarios::multi_site(apps, sites, links));
        solver_results.push_back(tool.design(cfg.solver_options()));
      }
    }

    for (std::size_t i = 0; i < app_counts.size(); ++i) {
      const int apps = app_counts[i];
      const SolveResult& solver = solver_results[i];
      DesignTool tool(scenarios::multi_site(apps, sites, links));
      const auto human = tool.design_human(cfg.baseline_options());
      const auto random = tool.design_random(cfg.baseline_options());

      auto cell = [](bool feasible, const CostBreakdown& cost) {
        return feasible ? Table::money(cost.total())
                        : std::string("infeasible");
      };
      table.add_row(
          {std::to_string(apps), cell(solver.feasible, solver.cost),
           cell(human.feasible, human.cost),
           cell(random.feasible, random.cost),
           solver.feasible && human.feasible
               ? ratio(human.cost.total(), solver.cost.total())
               : "-",
           solver.feasible && random.feasible
               ? ratio(random.cost.total(), solver.cost.total())
               : "-"});
    }
    print_table(table, cfg.csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
