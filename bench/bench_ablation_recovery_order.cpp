// Ablation: the §3.2.2 recovery serialization rule (highest penalty-rate
// first) against alternatives, echoing the authors' follow-up work on
// recovery scheduling ("On the road to recovery", EuroSys 2006).
//
// Two designs are re-priced under each ordering policy:
//   * the design tool's solution (failover-heavy: bring-up tasks are short
//     and uniform, so ordering matters little — that robustness is itself a
//     property of the tool's designs), and
//   * a deliberately contended all-reconstruct design: every application
//     consolidated on one array with "Sync mirror (R) with backup", where a
//     single array failure queues eight bulk restores of very different
//     sizes and penalty rates on the same devices.
//
//   ./bench_ablation_recovery_order [--apps=8] [--time-budget-ms=1500]
//                                   [--seed=42] [--csv]
#include "bench_common.hpp"
#include "core/scenarios.hpp"
#include "protection/catalog.hpp"
#include "resources/catalog.hpp"

namespace {

using namespace depstor;

/// All apps on one primary array/site with reconstruct-style protection.
Candidate contended_design(const Environment& env) {
  DesignChoice choice;
  choice.technique = protection::mirror_technique(
      MirrorMode::Sync, RecoveryMode::Reconstruct, true);
  choice.primary_site = 0;
  choice.secondary_site = 1;
  choice.primary_array_type = resources::xp1200().name;
  choice.mirror_array_type = resources::xp1200().name;
  choice.tape_type = resources::tape_library_high().name;
  choice.link_type = resources::network_high().name;
  Candidate cand(&env);
  for (int i = 0; i < static_cast<int>(env.apps.size()); ++i) {
    cand.place_app(i, choice);
  }
  return cand;
}

void report(const char* title, const Environment& env,
            const Candidate& cand, bool csv) {
  std::cout << "-- " << title << " --\n";
  depstor::bench::HarnessConfig cfg;  // only for print_table
  (void)cfg;
  Table table({"Ordering", "Outage penalty/yr", "Worst app E[outage] h/yr",
               "Total penalties/yr"});
  for (RecoveryOrder order : {RecoveryOrder::PriorityPenalty,
                              RecoveryOrder::ShortestFirst,
                              RecoveryOrder::FifoById}) {
    ModelParams params = env.params;
    params.recovery_order = order;
    const CostBreakdown cost = evaluate_cost(
        env.apps, cand.assignments(), cand.pool(), env.failures, params);
    double worst = 0.0;
    for (const auto& d : cost.per_app) {
      worst = std::max(worst, d.expected_outage_hours);
    }
    table.add_row({to_string(order), Table::money(cost.outage_penalty),
                   Table::num(worst, 2), Table::money(cost.penalty())});
  }
  depstor::bench::print_table(table, csv);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace depstor;
  using namespace depstor::bench;
  try {
    const CliFlags flags(argc, argv);
    const auto cfg = HarnessConfig::from_flags(flags);
    const int apps = flags.get_int("apps", 8);
    flags.reject_unknown();

    Environment env = scenarios::peer_sites(apps);
    std::cout << "== Recovery-ordering ablation (" << apps << " apps) ==\n\n";

    report("contended all-reconstruct design (one array, one site)", env,
           contended_design(env), cfg.csv);

    DesignTool tool(env);
    const auto designed = tool.design(cfg.solver_options());
    if (designed.feasible) {
      report("design tool's solution", env, *designed.best, cfg.csv);
    }
    std::cout << "(Loss penalties are ordering-invariant; the ordering only "
                 "moves outage time\nbetween applications of different "
                 "penalty rates. The paper's priority rule should\nminimize "
                 "the penalty-weighted outage on the contended design.)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
