// Figure 2: empirical distribution of solution costs in the peer-sites
// design space (paper §4.3.1).
//
// The paper sampled ~1e8 random designs; we default to 2e4 (CLI-tunable) —
// the multi-modal shape and the >10x cost spread are what matter. The
// design tool's solution is located within the sampled distribution
// (§4.3.2: it falls in the lowest cost percentile).
//
//   ./bench_fig2_solution_space [--samples=20000] [--bins=24] [--apps=8]
//                               [--time-budget-ms=1500] [--seed=42] [--csv]
#include "bench_common.hpp"
#include "core/sampler.hpp"
#include "core/scenarios.hpp"
#include "util/histogram.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  using namespace depstor::bench;
  try {
    const CliFlags flags(argc, argv);
    const auto cfg = HarnessConfig::from_flags(flags);
    const int apps = flags.get_int("apps", 8);
    const int samples = flags.get_int("samples", 20000);
    const int bins = flags.get_int("bins", 24);
    flags.reject_unknown();

    Environment env = scenarios::peer_sites(apps);
    SolutionSpaceSampler sampler(&env);
    std::cout << "== Figure 2: solution-space cost distribution, peer sites ("
              << apps << " apps, " << samples << " samples) ==\n\n";
    const auto stats = sampler.sample(samples, cfg.seed);
    std::cout << "feasible samples: " << stats.feasible << " of "
              << stats.attempted << " drawn\n"
              << "min: " << Table::money(stats.costs.min())
              << "  mean: " << Table::money(stats.costs.mean())
              << "  max: " << Table::money(stats.costs.max()) << "  spread: x"
              << Table::num(stats.costs.max() / stats.costs.min(), 1)
              << "\n\n";

    LogHistogram hist(stats.costs.min(), stats.costs.max() * 1.0001,
                      static_cast<std::size_t>(bins));
    for (double s : stats.samples) hist.add(s);
    if (cfg.csv) {
      Table t({"bin_lower", "bin_upper", "count"});
      for (std::size_t b = 0; b < hist.bin_count(); ++b) {
        t.add_row({Table::num(hist.bin_lower(b), 0),
                   Table::num(hist.bin_upper(b), 0),
                   std::to_string(hist.count(b))});
      }
      std::cout << t.render_csv();
    } else {
      std::cout << hist.render(56) << "\n";
    }

    DesignTool tool(std::move(env));
    const auto result = tool.design(cfg.solver_options());
    if (result.feasible) {
      std::cout << "design tool solution: " << Table::money(result.cost.total())
                << " → percentile "
                << Table::num(100.0 * stats.percentile_of(result.cost.total()),
                              2)
                << "% of the sampled space\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
