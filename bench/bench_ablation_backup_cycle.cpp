// Ablation: incremental backup cycles (extension over the paper's weekly
// fulls). For each Table 1 class protected by tape alone — where the tape
// copy is the recovery point for array failures — the configuration solver
// runs with the incremental option enabled and disabled. Incrementals buy
// fresher tape copies (less recent loss) at the price of cartridges and a
// slower chain-replay restore; the sweep should turn them on exactly for
// the loss-critical classes.
//
//   ./bench_ablation_backup_cycle [--time-budget-ms=1500] [--seed=42] [--csv]
#include "bench_common.hpp"
#include "core/scenarios.hpp"
#include "protection/catalog.hpp"
#include "resources/catalog.hpp"
#include "solver/config_solver.hpp"
#include "workload/catalog.hpp"

namespace {

using namespace depstor;

Environment one_app_env(const ApplicationSpec& app) {
  Environment env = scenarios::peer_sites(1);
  env.apps = {app};
  env.apps[0].id = 0;
  env.validate();
  return env;
}

DesignChoice backup_only_choice() {
  DesignChoice c;
  c.technique = protection::tape_backup_only();
  c.primary_site = 0;
  c.primary_array_type = resources::xp1200().name;
  c.tape_type = resources::tape_library_high().name;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace depstor::bench;
  try {
    const CliFlags flags(argc, argv);
    const auto cfg = HarnessConfig::from_flags(flags);
    flags.reject_unknown();
    (void)cfg;

    std::cout << "== Backup-cycle ablation: tape-only protection per app "
                 "class ==\n\n";
    Table table({"App class", "Loss rate", "Best w/o incrementals",
                 "Best with incrementals", "Chosen cycle", "Savings/yr"});
    for (const auto& app : workload::all_prototypes()) {
      double without_total = 0.0;
      double with_total = 0.0;
      std::string chosen = "-";
      for (bool allow : {false, true}) {
        Environment env = one_app_env(app);
        env.policies.allow_incremental_backups = allow;
        Candidate cand(&env);
        cand.place_app(0, backup_only_choice());
        ConfigSolver solver(&env);
        const double total = solver.solve(cand).total();
        if (allow) {
          with_total = total;
          chosen = to_string(cand.assignment(0).backup.cycle);
        } else {
          without_total = total;
        }
      }
      table.add_row({app.type_code, Table::money(app.loss_penalty_rate),
                     Table::money(without_total), Table::money(with_total),
                     chosen, Table::money(without_total - with_total)});
    }
    print_table(table, flags.get_bool("csv", false));
    std::cout << "\n(Expected: full+incrementals chosen for the $5M/hr-loss "
                 "classes, full-only kept\nwhere the loss rate cannot pay "
                 "for the extra cartridges and slower restores.)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
