// Figure 6: design tool solution cost vs the likelihood of disk array
// failure, swept from once in two years to once in twenty years (paper
// §4.5).
//
// Expected shape: nearly flat — the solver compensates for more frequent
// array failures with slightly larger resource allocations (failover
// capacity, faster restore paths).
//
//   ./bench_fig6_disk_sensitivity [--apps=16] [--sites=4] [--links=6]
//                                 [--time-budget-ms=1500] [--seed=42] [--csv]
#include "bench_sensitivity_common.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  using namespace depstor::bench;
  try {
    const CliFlags flags(argc, argv);
    const auto cfg = HarnessConfig::from_flags(flags);
    const int apps = flags.get_int("apps", 16);
    const int sites = flags.get_int("sites", 4);
    const int links = flags.get_int("links", 6);
    flags.reject_unknown();

    const std::vector<SweepPoint> points = {
        {"1 / 2 yr", 0.5},     {"1 / 3 yr", 1.0 / 3}, {"1 / 5 yr", 0.2},
        {"1 / 10 yr", 0.1},    {"1 / 20 yr", 0.05},
    };
    run_sensitivity_sweep("Figure 6", "disk array failure likelihood", points,
                          cfg, apps, sites, links,
                          [](FailureModel& f, double rate) {
                            f.disk_array_rate = rate;
                          });
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
