// Figure 3: comparison of data protection solution costs — outlays, data
// loss penalty and data outage penalty — for the design tool, the emulated
// human architect, and random design selection on the peer-sites case study
// (paper §4.3.2).
//
// Expected shape: design tool cheapest; roughly 1.9X cheaper than the human
// heuristic and 1.3X cheaper than random in the paper.
//
//   ./bench_fig3_heuristic_comparison [--apps=8] [--time-budget-ms=1500]
//                                     [--seed=42] [--csv]
#include "bench_common.hpp"
#include "core/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace depstor;
  using namespace depstor::bench;
  try {
    const CliFlags flags(argc, argv);
    const auto cfg = HarnessConfig::from_flags(flags);
    const int apps = flags.get_int("apps", 8);
    flags.reject_unknown();

    DesignTool tool(scenarios::peer_sites(apps));

    std::cout << "== Figure 3: heuristic comparison, peer sites (" << apps
              << " apps, " << cfg.time_budget_ms << " ms/heuristic) ==\n\n";

    struct Row {
      std::string name;
      bool feasible = false;
      CostBreakdown cost;
    };
    std::vector<Row> rows;

    {
      const auto r = tool.design(cfg.solver_options());
      rows.push_back({"design tool", r.feasible, r.cost});
    }
    {
      const auto r = tool.design_human(cfg.baseline_options());
      rows.push_back({"human heuristic", r.feasible, r.cost});
    }
    {
      const auto r = tool.design_random(cfg.baseline_options());
      rows.push_back({"random heuristic", r.feasible, r.cost});
    }

    const double tool_total = rows.front().cost.total();
    Table table({"Heuristic", "Outlays/yr", "Loss penalty/yr",
                 "Outage penalty/yr", "Total/yr", "vs design tool"});
    for (const auto& r : rows) {
      if (!r.feasible) {
        table.add_row({r.name, "infeasible", "-", "-", "-", "-"});
        continue;
      }
      table.add_row({r.name, Table::money(r.cost.outlay),
                     Table::money(r.cost.loss_penalty),
                     Table::money(r.cost.outage_penalty),
                     Table::money(r.cost.total()),
                     ratio(r.cost.total(), tool_total)});
    }
    print_table(table, cfg.csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
