// Shared driver for the Figure 5/6/7 failure-likelihood sensitivity sweeps
// (paper §4.5): 16 applications on four fully connected sites; the §4.5
// baseline rates (object 2/yr, disk 1/5yr, site 1/20yr) with one rate swept
// at a time. The design tool REDESIGNS at every point (that is what lets it
// compensate by buying resources), and the resulting outlay/penalty split is
// reported.
#pragma once

#include <functional>

#include "bench_common.hpp"
#include "core/scenarios.hpp"

namespace depstor::bench {

struct SweepPoint {
  std::string label;     ///< e.g. "1/5 yr"
  double rate_per_year;  ///< annualized likelihood
};

inline void run_sensitivity_sweep(
    const char* figure, const char* swept_name,
    const std::vector<SweepPoint>& points, const HarnessConfig& cfg, int apps,
    int sites, int links,
    const std::function<void(FailureModel&, double)>& apply_rate) {
  std::cout << "== " << figure << ": sensitivity to " << swept_name << " ("
            << apps << " apps, " << sites << " sites, " << cfg.time_budget_ms
            << " ms/point) ==\n\n";
  Table table({"Rate", "Outlays/yr", "Loss penalty/yr", "Outage penalty/yr",
               "Total/yr"});
  for (const auto& point : points) {
    Environment env = scenarios::multi_site(apps, sites, links);
    env.failures = FailureModel::sensitivity_baseline();
    apply_rate(env.failures, point.rate_per_year);
    DesignTool tool(std::move(env));
    const auto result = tool.design(cfg.solver_options());
    if (!result.feasible) {
      table.add_row({point.label, "infeasible", "-", "-", "-"});
      continue;
    }
    table.add_row({point.label, Table::money(result.cost.outlay),
                   Table::money(result.cost.loss_penalty),
                   Table::money(result.cost.outage_penalty),
                   Table::money(result.cost.total())});
  }
  print_table(table, cfg.csv);
}

}  // namespace depstor::bench
