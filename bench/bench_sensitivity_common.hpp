// Shared driver for the Figure 5/6/7 failure-likelihood sensitivity sweeps
// (paper §4.5): 16 applications on four fully connected sites; the §4.5
// baseline rates (object 2/yr, disk 1/5yr, site 1/20yr) with one rate swept
// at a time. The design tool REDESIGNS at every point (that is what lets it
// compensate by buying resources), and the resulting outlay/penalty split is
// reported.
#pragma once

#include <functional>

#include "bench_common.hpp"
#include "core/scenarios.hpp"

namespace depstor::bench {

struct SweepPoint {
  std::string label;     ///< e.g. "1/5 yr"
  double rate_per_year;  ///< annualized likelihood
};

inline void run_sensitivity_sweep(
    const char* figure, const char* swept_name,
    const std::vector<SweepPoint>& points, const HarnessConfig& cfg, int apps,
    int sites, int links,
    const std::function<void(FailureModel&, double)>& apply_rate) {
  std::cout << "== " << figure << ": sensitivity to " << swept_name << " ("
            << apps << " apps, " << sites << " sites, " << cfg.time_budget_ms
            << " ms/point"
            << (cfg.use_engine ? ", batch engine" : "") << ") ==\n\n";

  auto point_env = [&](const SweepPoint& point) {
    Environment env = scenarios::multi_site(apps, sites, links);
    env.failures = FailureModel::sensitivity_baseline();
    apply_rate(env.failures, point.rate_per_year);
    return env;
  };

  // Per-point solver results, either sequentially or — with --engine — all
  // points solved concurrently on the batch engine with a shared cache.
  std::vector<SolveResult> results;
  if (cfg.use_engine) {
    std::vector<DesignJob> jobs;
    jobs.reserve(points.size());
    for (const auto& point : points) {
      DesignJob job =
          DesignJob::make(point_env(point), cfg.solver_options(), point.label);
      job.derive_seed = false;  // same seed per point, as the sequential path
      jobs.push_back(std::move(job));
    }
    BatchReport report =
        DesignTool::design_batch(std::move(jobs), cfg.engine_options());
    for (auto& r : report.results) results.push_back(std::move(r.solve));
    std::cout << report.metrics.render() << "\n";
  } else {
    for (const auto& point : points) {
      DesignTool tool(point_env(point));
      results.push_back(tool.design(cfg.solver_options()));
    }
  }

  Table table({"Rate", "Outlays/yr", "Loss penalty/yr", "Outage penalty/yr",
               "Total/yr"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SolveResult& result = results[i];
    if (!result.feasible) {
      table.add_row({points[i].label, "infeasible", "-", "-", "-"});
      continue;
    }
    table.add_row({points[i].label, Table::money(result.cost.outlay),
                   Table::money(result.cost.loss_penalty),
                   Table::money(result.cost.outage_penalty),
                   Table::money(result.cost.total())});
  }
  print_table(table, cfg.csv);
}

}  // namespace depstor::bench
