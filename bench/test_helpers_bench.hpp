// Small builders shared by the perf benchmarks.
#pragma once

#include "protection/catalog.hpp"
#include "resources/catalog.hpp"
#include "solver/solution.hpp"

namespace depstor::bench_testing {

/// Sync-mirror-with-backup choice on the high-end devices, sites 0 → 1.
inline DesignChoice full_protection_choice() {
  DesignChoice c;
  c.technique = protection::mirror_technique(MirrorMode::Sync,
                                             RecoveryMode::Failover, true);
  c.primary_site = 0;
  c.secondary_site = 1;
  c.primary_array_type = resources::xp1200().name;
  c.mirror_array_type = resources::xp1200().name;
  c.tape_type = resources::tape_library_high().name;
  c.link_type = resources::network_high().name;
  return c;
}

}  // namespace depstor::bench_testing
